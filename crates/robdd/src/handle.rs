//! Owned, reference-counted ROBDD function handles.
//!
//! A [`RobddFn`] is the *safe* public face of a Boolean function: it wraps
//! an [`Edge`] together with a slot in the manager's external-root registry
//! ([`ddcore::roots::RootSet`]). The handle registers itself on creation,
//! clones by bumping the slot's refcount, and releases the slot on `Drop`
//! — so everything a caller still holds is, by construction, visible to
//! [`Robdd::gc`], [`Robdd::sift`] and the automatic GC trigger. The
//! "forgot a root across a collection" bug class is unrepresentable: there
//! is no root list to forget.
//!
//! Raw [`Edge`]s remain available as the unprotected low-level currency
//! (cheap `Copy`, used inside single operations and by the recursion
//! internals); a raw edge is only guaranteed valid until the next
//! collection point unless some handle keeps its nodes alive.
//!
//! ```
//! use robdd::Robdd;
//! let mut mgr = Robdd::new(3);
//! let a = mgr.var_fn(0);
//! let b = mgr.var_fn(1);
//! let f = mgr.xor_fn(&a, &b);
//! drop(b);            // the XOR nodes stay alive through `f`
//! mgr.gc();           // no root list — the registry knows
//! assert!(mgr.eval(f.edge(), &[true, false, false]));
//! ```

use crate::edge::Edge;
use crate::manager::Robdd;
use ddcore::boolop::BoolOp;
use ddcore::nary::NaryOp;
use ddcore::roots::RootSet;

/// An owned handle to an ROBDD function (see the module docs).
///
/// Equality compares the underlying edges, which — by canonicity — is
/// function equality for handles of the same manager.
#[derive(Debug)]
pub struct RobddFn {
    edge: Edge,
    slot: u32,
    roots: RootSet,
}

impl RobddFn {
    /// Register `edge` as an external root of `roots`.
    pub(crate) fn register(roots: &RootSet, edge: Edge) -> Self {
        RobddFn {
            edge,
            slot: roots.register(u64::from(edge.bits())),
            roots: roots.clone(),
        }
    }

    /// The underlying edge (valid as long as this handle lives).
    #[must_use]
    pub fn edge(&self) -> Edge {
        self.edge
    }

    /// `true` when the handle denotes a constant function.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.edge.is_constant()
    }
}

impl Clone for RobddFn {
    fn clone(&self) -> Self {
        self.roots.retain(self.slot);
        RobddFn {
            edge: self.edge,
            slot: self.slot,
            roots: self.roots.clone(),
        }
    }
}

impl Drop for RobddFn {
    fn drop(&mut self) {
        self.roots.release(self.slot);
    }
}

impl PartialEq for RobddFn {
    fn eq(&self, other: &Self) -> bool {
        self.edge == other.edge
    }
}

impl Eq for RobddFn {}

impl Robdd {
    /// Wrap an edge in an owned handle, pinning its nodes until the handle
    /// (and every clone) is dropped. This is the bridge from the low-level
    /// [`Edge`] API into the protected handle world.
    #[must_use]
    pub fn fun(&self, e: Edge) -> RobddFn {
        RobddFn::register(self.root_set(), e)
    }

    /// Handles currently registered with this manager (live root slots).
    #[must_use]
    pub fn external_roots(&self) -> usize {
        self.root_set().len()
    }

    /// The constant function as a handle.
    #[must_use]
    pub fn const_fn(&self, value: bool) -> RobddFn {
        self.fun(if value { self.one() } else { self.zero() })
    }

    /// The positive literal of `var` as a handle.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn var_fn(&mut self, var: usize) -> RobddFn {
        let e = self.var(var);
        self.finish_fn(e)
    }

    /// The negative literal of `var` as a handle.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn nvar_fn(&mut self, var: usize) -> RobddFn {
        let e = self.nvar(var);
        self.finish_fn(e)
    }

    /// Complement (free, no collection point).
    #[must_use]
    pub fn not_fn(&self, f: &RobddFn) -> RobddFn {
        self.fun(!f.edge())
    }

    /// `f ⊗ g` for an arbitrary binary operator — [`Robdd::apply`] on
    /// handles.
    pub fn apply_fn(&mut self, op: BoolOp, f: &RobddFn, g: &RobddFn) -> RobddFn {
        let e = self.apply(op, f.edge(), g.edge());
        self.finish_fn(e)
    }

    /// `f ∧ g` on handles.
    pub fn and_fn(&mut self, f: &RobddFn, g: &RobddFn) -> RobddFn {
        self.apply_fn(BoolOp::AND, f, g)
    }

    /// `f ∨ g` on handles.
    pub fn or_fn(&mut self, f: &RobddFn, g: &RobddFn) -> RobddFn {
        self.apply_fn(BoolOp::OR, f, g)
    }

    /// `f ⊕ g` on handles.
    pub fn xor_fn(&mut self, f: &RobddFn, g: &RobddFn) -> RobddFn {
        self.apply_fn(BoolOp::XOR, f, g)
    }

    /// `f ⊙ g` on handles.
    pub fn xnor_fn(&mut self, f: &RobddFn, g: &RobddFn) -> RobddFn {
        self.apply_fn(BoolOp::XNOR, f, g)
    }

    /// If-then-else on handles.
    pub fn ite_fn(&mut self, f: &RobddFn, g: &RobddFn, h: &RobddFn) -> RobddFn {
        let e = self.ite(f.edge(), g.edge(), h.edge());
        self.finish_fn(e)
    }

    /// Existential cube quantification on handles.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn exists_fn(&mut self, f: &RobddFn, vars: &[usize]) -> RobddFn {
        let e = self.exists(f.edge(), vars);
        self.finish_fn(e)
    }

    /// Universal cube quantification on handles.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn forall_fn(&mut self, f: &RobddFn, vars: &[usize]) -> RobddFn {
        let e = self.forall(f.edge(), vars);
        self.finish_fn(e)
    }

    /// Fused relational product `∃ vars . (f ∧ g)` on handles.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn and_exists_fn(&mut self, f: &RobddFn, g: &RobddFn, vars: &[usize]) -> RobddFn {
        let e = self.and_exists(f.edge(), g.edge(), vars);
        self.finish_fn(e)
    }

    /// Single-variable restriction `f|_{var = value}` on handles.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn restrict_fn(&mut self, f: &RobddFn, var: usize, value: bool) -> RobddFn {
        let e = self.restrict(f.edge(), var, value);
        self.finish_fn(e)
    }

    /// Substitute `var := g` in `f` on handles.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn compose_fn(&mut self, f: &RobddFn, var: usize, g: &RobddFn) -> RobddFn {
        let e = self.compose(f.edge(), var, g.edge());
        self.finish_fn(e)
    }

    /// Simultaneous substitution on handles (see
    /// [`Robdd::vector_compose`]).
    ///
    /// # Panics
    /// Panics if `subs` is longer than `num_vars()`.
    pub fn vector_compose_fn(&mut self, f: &RobddFn, subs: &[Option<RobddFn>]) -> RobddFn {
        let edges: Vec<Option<Edge>> = subs.iter().map(|s| s.as_ref().map(RobddFn::edge)).collect();
        let e = self.vector_compose(f.edge(), &edges);
        self.finish_fn(e)
    }

    /// Generic n-ary apply on handles (see [`Robdd::apply_n`]).
    ///
    /// # Panics
    /// Panics if `operands.len()` does not match the operator's arity.
    pub fn apply_n_fn(&mut self, op: NaryOp, operands: &[RobddFn]) -> RobddFn {
        let edges: Vec<Edge> = operands.iter().map(RobddFn::edge).collect();
        let e = self.apply_n(op, &edges);
        self.finish_fn(e)
    }

    /// The edges behind a slice of handles — the bridge back into the
    /// read-only `&[Edge]` query APIs.
    #[must_use]
    pub fn edges_of(roots: &[RobddFn]) -> Vec<Edge> {
        roots.iter().map(RobddFn::edge).collect()
    }

    /// [`Robdd::shared_node_count`] over owned handles.
    #[must_use]
    pub fn shared_node_count_fns(&self, roots: &[RobddFn]) -> usize {
        self.shared_node_count(&Robdd::edges_of(roots))
    }

    /// [`Robdd::to_dot`] over owned handles.
    #[must_use]
    pub fn to_dot_fns(&self, roots: &[RobddFn], names: &[&str]) -> String {
        self.to_dot(&Robdd::edges_of(roots), names)
    }

    /// Register an op result and run the latched automatic GC, if armed
    /// (the handle-boundary collection point).
    pub(crate) fn finish_fn(&mut self, e: Edge) -> RobddFn {
        let h = self.fun(e);
        self.maybe_auto_gc();
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_pin_nodes_across_gc() {
        let mut mgr = Robdd::new(4);
        let a = mgr.var_fn(0);
        let b = mgr.var_fn(1);
        let f = mgr.xor_fn(&a, &b);
        drop(a);
        drop(b);
        assert_eq!(mgr.external_roots(), 1);
        mgr.gc();
        assert!(mgr.eval(f.edge(), &[true, false, false, false]));
        assert!(mgr.validate().is_ok());
        drop(f);
        assert_eq!(mgr.external_roots(), 0);
        mgr.gc();
        assert_eq!(mgr.live_nodes(), 0, "sink-only once all handles drop");
    }

    #[test]
    fn clone_bumps_and_drop_releases() {
        let mut mgr = Robdd::new(2);
        let a = mgr.var_fn(0);
        let a2 = a.clone();
        assert_eq!(a, a2);
        assert_eq!(mgr.external_roots(), 1, "clones share one slot");
        drop(a);
        mgr.gc();
        assert!(mgr.eval(a2.edge(), &[true, false]), "clone keeps it alive");
        drop(a2);
        mgr.gc();
        assert_eq!(mgr.live_nodes(), 0);
    }

    #[test]
    fn full_handle_op_suite_matches_edge_ops() {
        let mut mgr = Robdd::new(4);
        let vs: Vec<RobddFn> = (0..4).map(|v| mgr.var_fn(v)).collect();
        let f = mgr.and_fn(&vs[0], &vs[1]);
        let g = mgr.or_fn(&vs[2], &vs[3]);
        let h = mgr.ite_fn(&vs[0], &f, &g);
        let ex = mgr.exists_fn(&h, &[1]);
        let fa = mgr.forall_fn(&h, &[1]);
        let ae = mgr.and_exists_fn(&f, &g, &[2]);
        let r = mgr.restrict_fn(&h, 0, true);
        let c = mgr.compose_fn(&f, 0, &g);
        let nf = mgr.not_fn(&f);
        mgr.gc();
        // Mirror with raw edges (no GC in between, so raw is safe here).
        let (a, b, cc, d) = (mgr.var(0), mgr.var(1), mgr.var(2), mgr.var(3));
        let fe = mgr.and(a, b);
        let ge = mgr.or(cc, d);
        let he = mgr.ite(a, fe, ge);
        assert_eq!(f.edge(), fe);
        assert_eq!(g.edge(), ge);
        assert_eq!(h.edge(), he);
        assert_eq!(ex.edge(), mgr.exists(he, &[1]));
        assert_eq!(fa.edge(), mgr.forall(he, &[1]));
        assert_eq!(ae.edge(), mgr.and_exists(fe, ge, &[2]));
        assert_eq!(r.edge(), mgr.restrict(he, 0, true));
        assert_eq!(c.edge(), mgr.compose(fe, 0, ge));
        assert_eq!(nf.edge(), !fe);
    }

    #[test]
    fn auto_gc_reclaims_dead_intermediates() {
        let mut mgr = Robdd::new(6);
        mgr.set_gc_threshold(1); // latch on every node creation
        let vs: Vec<RobddFn> = (0..6).map(|v| mgr.var_fn(v)).collect();
        let mut acc = mgr.const_fn(true);
        for v in &vs {
            acc = mgr.xnor_fn(&acc, v); // old acc handle drops each round
        }
        assert!(mgr.stats().gc_runs > 0, "auto-GC must have fired");
        for m in 0..64u32 {
            let a: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
            let parity = a.iter().filter(|&&x| x).count() % 2 == 0;
            assert_eq!(mgr.eval(acc.edge(), &a), parity);
        }
        assert!(mgr.validate().is_ok());
    }
}

//! Property-based tests of the ROBDD baseline, mirroring the BBDD suite:
//! the two packages must satisfy the same algebraic contracts.

use proptest::prelude::*;
use robdd::{BoolOp, Edge, Robdd};

#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Const(bool),
    Not(Box<Expr>),
    Bin(u8, Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr(nvars: usize, depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(depth, 64, 3, move |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (0u8..16, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(s, a, b)| Expr::Ite(
                Box::new(s),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn build(mgr: &mut Robdd, e: &Expr) -> Edge {
    match e {
        Expr::Var(v) => mgr.var(*v),
        Expr::Const(b) => {
            if *b {
                mgr.one()
            } else {
                mgr.zero()
            }
        }
        Expr::Not(x) => {
            let inner = build(mgr, x);
            !inner
        }
        Expr::Bin(op, a, b) => {
            let ea = build(mgr, a);
            let eb = build(mgr, b);
            mgr.apply(BoolOp::from_table(*op), ea, eb)
        }
        Expr::Ite(s, a, b) => {
            let es = build(mgr, s);
            let ea = build(mgr, a);
            let eb = build(mgr, b);
            mgr.ite(es, ea, eb)
        }
    }
}

fn eval_expr(e: &Expr, v: &[bool]) -> bool {
    match e {
        Expr::Var(i) => v[*i],
        Expr::Const(b) => *b,
        Expr::Not(x) => !eval_expr(x, v),
        Expr::Bin(op, a, b) => BoolOp::from_table(*op).eval(eval_expr(a, v), eval_expr(b, v)),
        Expr::Ite(s, a, b) => {
            if eval_expr(s, v) {
                eval_expr(a, v)
            } else {
                eval_expr(b, v)
            }
        }
    }
}

const NVARS: usize = 5;

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << NVARS).map(|m| (0..NVARS).map(|i| (m >> i) & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn build_matches_brute_force(e in arb_expr(NVARS, 5)) {
        let mut mgr = Robdd::new(NVARS);
        let f = build(&mut mgr, &e);
        mgr.validate().unwrap();
        for v in assignments() {
            prop_assert_eq!(mgr.eval(f, &v), eval_expr(&e, &v));
        }
    }

    #[test]
    fn canonicity_and_sat_count(e in arb_expr(NVARS, 4)) {
        let mut mgr = Robdd::new(NVARS);
        let f = build(&mut mgr, &e);
        let g = build(&mut mgr, &e);
        prop_assert_eq!(f, g);
        let brute = assignments().filter(|v| eval_expr(&e, v)).count() as u128;
        prop_assert_eq!(mgr.sat_count(f), brute);
    }

    #[test]
    fn restrict_matches(e in arb_expr(NVARS, 4), var in 0..NVARS, val in any::<bool>()) {
        let mut mgr = Robdd::new(NVARS);
        let f = build(&mut mgr, &e);
        let r = mgr.restrict(f, var, val);
        for v in assignments() {
            let mut vv = v.clone();
            vv[var] = val;
            prop_assert_eq!(mgr.eval(r, &v), eval_expr(&e, &vv));
        }
        prop_assert!(!mgr.depends_on(r, var));
    }

    #[test]
    fn swap_walks_preserve_functions(
        e in arb_expr(NVARS, 4),
        walk in proptest::collection::vec(0..NVARS - 1, 1..24),
    ) {
        let mut mgr = Robdd::new(NVARS);
        let f = build(&mut mgr, &e);
        let reference: Vec<bool> = assignments().map(|v| mgr.eval(f, &v)).collect();
        for pos in walk {
            mgr.swap_adjacent(pos);
            mgr.validate().unwrap();
            let now: Vec<bool> = assignments().map(|v| mgr.eval(f, &v)).collect();
            prop_assert_eq!(&now, &reference);
        }
    }

    #[test]
    fn sift_preserves_and_never_grows(e in arb_expr(NVARS, 5)) {
        let mut mgr = Robdd::new(NVARS);
        let f = build(&mut mgr, &e);
        let reference: Vec<bool> = assignments().map(|v| mgr.eval(f, &v)).collect();
        let _fh = mgr.pin(f);
        mgr.gc();
        let before = mgr.live_nodes();
        mgr.sift();
        mgr.validate().unwrap();
        prop_assert!(mgr.live_nodes() <= before);
        let now: Vec<bool> = assignments().map(|v| mgr.eval(f, &v)).collect();
        prop_assert_eq!(&now, &reference);
    }

    #[test]
    fn packages_agree_on_everything(e in arb_expr(NVARS, 5)) {
        // The decisive cross-package property: identical semantics.
        let mut bd = Robdd::new(NVARS);
        let fd = build(&mut bd, &e);
        let mut bb = bbdd::Bbdd::new(NVARS);
        let fb = build_bbdd(&mut bb, &e);
        for v in assignments() {
            prop_assert_eq!(bd.eval(fd, &v), bb.eval(fb, &v));
        }
        prop_assert_eq!(bd.sat_count(fd), bb.sat_count(fb));
    }
}

fn build_bbdd(mgr: &mut bbdd::Bbdd, e: &Expr) -> bbdd::Edge {
    match e {
        Expr::Var(v) => mgr.var(*v),
        Expr::Const(b) => {
            if *b {
                mgr.one()
            } else {
                mgr.zero()
            }
        }
        Expr::Not(x) => {
            let inner = build_bbdd(mgr, x);
            !inner
        }
        Expr::Bin(op, a, b) => {
            let ea = build_bbdd(mgr, a);
            let eb = build_bbdd(mgr, b);
            mgr.apply(bbdd::BoolOp::from_table(*op), ea, eb)
        }
        Expr::Ite(s, a, b) => {
            let es = build_bbdd(mgr, s);
            let ea = build_bbdd(mgr, a);
            let eb = build_bbdd(mgr, b);
            mgr.ite(es, ea, eb)
        }
    }
}

//! Decision-diagram → netlist conversion: the paper's datapath re-writing
//! front-end (§V-A), generalized over every manager in the workspace.
//!
//! The BBDD dump is the paper's: every biconditional node becomes a 2:1
//! multiplexer whose select is the comparator `PV ⊙ SV`; all nodes of one
//! CVO level share that single XNOR (the comparator is a property of the
//! level, not of the node), which is exactly why "BBDD nodes inherently
//! act as two-variable comparators" turns into compact mapped netlists on
//! a library with XNOR-2 cells. Shannon (R4) nodes pass the PV literal
//! through, and complement attributes become shared inverters.
//!
//! The ROBDD dump is the Shannon analogue — one multiplexer per node with
//! the tested variable as the select — so the same synthesis flow can be
//! driven by either package and the Table-II methodology extends to a
//! BDD-first flow for free.
//!
//! [`DiagramRewrite`] packages the conversion as a capability on top of
//! [`FunctionManager`]: the synthesis flow ([`crate::flow`]) and the CLI
//! are written once against it and select a backend at runtime.

use bbdd::Bbdd;
use ddcore::api::FunctionManager;
use logicnet::build::build_network;
use logicnet::cec::{check_equivalence_bbdd, CecVerdict};
use logicnet::{GateOp, Network, Signal};
use robdd::Robdd;
use std::collections::{HashMap, HashSet};

/// A manager whose diagrams can be dumped back as a gate-level network —
/// the capability the manager-generic synthesis flow and the CLI are
/// written against. Implemented by all four managers.
pub trait DiagramRewrite: FunctionManager {
    /// Convert the diagrams rooted at `roots` into a gate network.
    ///
    /// Network input `i` corresponds to manager variable `i` (named from
    /// `input_names` or `x{i}`); output port `k` takes `output_names[k]`
    /// (or `f{k}`).
    fn dump_network(
        &self,
        roots: &[Self::Function],
        input_names: &[String],
        output_names: &[String],
    ) -> Network;
}

impl DiagramRewrite for bbdd::BbddManager {
    fn dump_network(
        &self,
        roots: &[Self::Function],
        input_names: &[String],
        output_names: &[String],
    ) -> Network {
        let edges: Vec<bbdd::Edge> = roots.iter().map(|r| r.edge()).collect();
        bbdd_to_network(&self.backend(), &edges, input_names, output_names)
    }
}

impl DiagramRewrite for bbdd::ParBbddManager {
    fn dump_network(
        &self,
        roots: &[Self::Function],
        input_names: &[String],
        output_names: &[String],
    ) -> Network {
        let edges: Vec<bbdd::Edge> = roots.iter().map(|r| r.edge()).collect();
        bbdd_to_network(self.backend().inner(), &edges, input_names, output_names)
    }
}

impl DiagramRewrite for robdd::RobddManager {
    fn dump_network(
        &self,
        roots: &[Self::Function],
        input_names: &[String],
        output_names: &[String],
    ) -> Network {
        let edges: Vec<robdd::Edge> = roots.iter().map(|r| r.edge()).collect();
        robdd_to_network(&self.backend(), &edges, input_names, output_names)
    }
}

impl DiagramRewrite for robdd::ParRobddManager {
    fn dump_network(
        &self,
        roots: &[Self::Function],
        input_names: &[String],
        output_names: &[String],
    ) -> Network {
        let edges: Vec<robdd::Edge> = roots.iter().map(|r| r.edge()).collect();
        robdd_to_network(self.backend().inner(), &edges, input_names, output_names)
    }
}

/// Rewrite `net` through a decision diagram in `mgr` (optionally
/// reordered) and *prove* the rewritten netlist equivalent to the
/// original with the combinational equivalence checker — the
/// self-verifying form of the paper's datapath front-end. The proof runs
/// in a fresh BBDD manager regardless of `mgr`'s backend, so the check is
/// independent of the structure under test. Returns the rewritten network
/// together with the verdict (which is [`CecVerdict::Equivalent`] unless
/// this package is broken; the verdict is returned rather than asserted
/// so flows can log it).
#[must_use]
pub fn rewrite_and_verify<M: DiagramRewrite>(
    mgr: &M,
    net: &Network,
    reorder: bool,
) -> (Network, CecVerdict) {
    let roots = build_network(mgr, net);
    if reorder {
        let _ = mgr.reorder(); // output handles are the registry's roots
    }
    let in_names: Vec<String> = net
        .inputs()
        .iter()
        .map(|&s| net.signal_name(s).to_string())
        .collect();
    let out_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    let rewritten = mgr.dump_network(&roots, &in_names, &out_names);
    let verdict = check_equivalence_bbdd(net, &rewritten);
    (rewritten, verdict)
}

/// [`rewrite_and_verify`] through a fresh sequential BBDD manager — the
/// paper's flow as a one-liner.
#[must_use]
pub fn rewrite_and_verify_bbdd(net: &Network, sift: bool) -> (Network, CecVerdict) {
    let mgr = bbdd::BbddManager::with_vars(net.num_inputs().max(1));
    rewrite_and_verify(&mgr, net, sift)
}

/// Convert the BBDD functions `roots` of `mgr` into a gate network (the
/// edge-level core behind [`DiagramRewrite`]; see the module docs for the
/// structure).
#[must_use]
pub fn bbdd_to_network(
    mgr: &Bbdd,
    roots: &[bbdd::Edge],
    input_names: &[String],
    output_names: &[String],
) -> Network {
    let n = mgr.num_vars();
    let mut net = Network::new("bbdd_rewrite");
    let inputs: Vec<Signal> = (0..n)
        .map(|i| {
            let default = format!("x{i}");
            let name = input_names.get(i).cloned().unwrap_or(default);
            net.add_input(&name)
        })
        .collect();

    // Shared per-level comparator XNOR(PV, SV), node signals (positive
    // polarity), shared inverters and the constant-one source.
    let mut level_sel: HashMap<usize, Signal> = HashMap::new();
    let mut node_sig: HashMap<u32, Signal> = HashMap::new();
    let mut inv_sig: HashMap<Signal, Signal> = HashMap::new();
    let mut const1: Option<Signal> = None;

    // Gather reachable nodes, sorted bottom-up so children exist first.
    let mut nodes: Vec<(u32, bbdd::Edge)> = Vec::new();
    {
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<bbdd::Edge> = roots.to_vec();
        while let Some(e) = stack.pop() {
            let Some(id) = mgr.edge_id(e) else { continue };
            if !seen.insert(id) {
                continue;
            }
            let info = mgr.node_info(e).expect("non-constant edge");
            nodes.push((id, e.regular()));
            stack.push(info.neq);
            stack.push(info.eq);
        }
        nodes.sort_by_key(|&(_, e)| mgr.node_info(e).expect("node").level);
    }

    for (id, e) in nodes {
        let info = mgr.node_info(e).expect("node");
        let sig = if info.shannon {
            inputs[info.pv]
        } else {
            let sel = match level_sel.entry(info.level) {
                std::collections::hash_map::Entry::Occupied(o) => *o.get(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let pv = inputs[info.pv];
                    let s = match info.sv {
                        Some(sv) => net.add_gate(GateOp::Xnor, &[pv, inputs[sv]]),
                        None => pv, // bottom level: PV ⊙ 1 = PV
                    };
                    *v.insert(s)
                }
            };
            // Deliberately emit the generic multiplexer even for XNOR- and
            // constant-child node shapes: the uniform mux structure exposes
            // shared AND terms across sibling nodes to the back-end's
            // structural hashing, which measurably beats per-node
            // peepholing (e.g. 99 vs 141 cells on the 16-bit CLA adder).
            let t = edge_signal(
                &mut net,
                info.eq.is_complemented(),
                mgr.edge_id(info.eq),
                &node_sig,
                &mut inv_sig,
                &mut const1,
                info.eq == bbdd::Edge::ONE,
            );
            let f = edge_signal(
                &mut net,
                info.neq.is_complemented(),
                mgr.edge_id(info.neq),
                &node_sig,
                &mut inv_sig,
                &mut const1,
                info.neq == bbdd::Edge::ONE,
            );
            net.add_gate(GateOp::Mux, &[sel, t, f])
        };
        node_sig.insert(id, sig);
    }

    for (k, root) in roots.iter().enumerate() {
        let default = format!("f{k}");
        let name = output_names.get(k).cloned().unwrap_or(default);
        let sig = edge_signal(
            &mut net,
            root.is_complemented(),
            mgr.edge_id(*root),
            &node_sig,
            &mut inv_sig,
            &mut const1,
            *root == bbdd::Edge::ONE,
        );
        net.set_output(&name, sig);
    }
    net.check().expect("rewritten network must be valid");
    net
}

/// Convert the ROBDD functions `roots` of `mgr` into a gate network: one
/// `MUX(var, then, else)` per Shannon node, shared inverters for
/// complement edges (the BDD-first analogue of [`bbdd_to_network`]).
#[must_use]
pub fn robdd_to_network(
    mgr: &Robdd,
    roots: &[robdd::Edge],
    input_names: &[String],
    output_names: &[String],
) -> Network {
    let n = mgr.num_vars();
    let mut net = Network::new("robdd_rewrite");
    let inputs: Vec<Signal> = (0..n)
        .map(|i| {
            let default = format!("x{i}");
            let name = input_names.get(i).cloned().unwrap_or(default);
            net.add_input(&name)
        })
        .collect();

    let mut node_sig: HashMap<u32, Signal> = HashMap::new();
    let mut inv_sig: HashMap<Signal, Signal> = HashMap::new();
    let mut const1: Option<Signal> = None;

    // Reachable nodes, children before parents: a node's children sit
    // strictly *below* it in the order, so descending position = bottom-up.
    let mut nodes: Vec<(u32, robdd::Edge)> = Vec::new();
    {
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<robdd::Edge> = roots.to_vec();
        while let Some(e) = stack.pop() {
            let Some(id) = mgr.edge_id(e) else { continue };
            if !seen.insert(id) {
                continue;
            }
            let info = mgr.node_info(e).expect("non-constant edge");
            nodes.push((id, e.regular()));
            stack.push(info.then_);
            stack.push(info.else_);
        }
        nodes.sort_by_key(|&(_, e)| {
            std::cmp::Reverse(mgr.position_of(mgr.node_info(e).expect("node").var))
        });
    }

    for (id, e) in nodes {
        let info = mgr.node_info(e).expect("node");
        let sel = inputs[info.var];
        let t = edge_signal(
            &mut net,
            info.then_.is_complemented(),
            mgr.edge_id(info.then_),
            &node_sig,
            &mut inv_sig,
            &mut const1,
            info.then_ == robdd::Edge::ONE,
        );
        let f = edge_signal(
            &mut net,
            info.else_.is_complemented(),
            mgr.edge_id(info.else_),
            &node_sig,
            &mut inv_sig,
            &mut const1,
            info.else_ == robdd::Edge::ONE,
        );
        node_sig.insert(id, net.add_gate(GateOp::Mux, &[sel, t, f]));
    }

    for (k, root) in roots.iter().enumerate() {
        let default = format!("f{k}");
        let name = output_names.get(k).cloned().unwrap_or(default);
        let sig = edge_signal(
            &mut net,
            root.is_complemented(),
            mgr.edge_id(*root),
            &node_sig,
            &mut inv_sig,
            &mut const1,
            *root == robdd::Edge::ONE,
        );
        net.set_output(&name, sig);
    }
    net.check().expect("rewritten network must be valid");
    net
}

/// Resolve an edge (described representation-neutrally: node id, polarity
/// and constant-ness) to a network signal, sharing inverters and the
/// constant-one source.
fn edge_signal(
    net: &mut Network,
    complemented: bool,
    id: Option<u32>,
    node_sig: &HashMap<u32, Signal>,
    inv_sig: &mut HashMap<Signal, Signal>,
    const1: &mut Option<Signal>,
    is_one: bool,
) -> Signal {
    let Some(id) = id else {
        let one = *const1.get_or_insert_with(|| net.add_gate(GateOp::Const1, &[]));
        if is_one {
            return one;
        }
        return *inv_sig
            .entry(one)
            .or_insert_with(|| net.add_gate(GateOp::Not, &[one]));
    };
    let base = *node_sig.get(&id).expect("children emitted before parents");
    if complemented {
        *inv_sig
            .entry(base)
            .or_insert_with(|| net.add_gate(GateOp::Not, &[base]))
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbdd::prelude::*;
    use logicnet::sim::{exhaustive_equivalence, Equivalence};
    use robdd::prelude::*;

    /// Round-trip: network → diagram → network must preserve the function,
    /// on every backend.
    fn roundtrip<M: DiagramRewrite>(mgr: &M, net: &Network) {
        let roots = build_network(mgr, net);
        let in_names: Vec<String> = net
            .inputs()
            .iter()
            .map(|&s| net.signal_name(s).to_string())
            .collect();
        let out_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        let rewritten = mgr.dump_network(&roots, &in_names, &out_names);
        assert_eq!(
            exhaustive_equivalence(net, &rewritten),
            Equivalence::Indistinguishable
        );
    }

    fn full_adder() -> Network {
        let mut net = Network::new("fa");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let x = net.add_gate(GateOp::Xor, &[a, b]);
        let s = net.add_gate(GateOp::Xor, &[x, c]);
        let m = net.add_gate(GateOp::Maj, &[a, b, c]);
        net.set_output("s", s);
        net.set_output("co", m);
        net
    }

    #[test]
    fn rewrites_full_adder_on_all_backends() {
        let net = full_adder();
        roundtrip(&BbddManager::with_vars(3), &net);
        roundtrip(&RobddManager::with_vars(3), &net);
        roundtrip(&ParBbddManager::new(ParBbdd::new(3, 2)), &net);
        roundtrip(&ParRobddManager::new(ParRobdd::new(3, 2)), &net);
    }

    #[test]
    fn rewrites_comparator_with_shared_level_xnors() {
        let net = benchgen::datapath::equality(4);
        let mgr = BbddManager::with_vars(net.num_inputs());
        let roots = build_network(&mgr, &net);
        // Interleave operands so the XNOR pairs are adjacent in the CVO.
        let order: Vec<usize> = (0..4).flat_map(|i| [i, i + 4]).collect();
        mgr.backend_mut().reorder_to(&order);
        let rewritten = mgr.dump_network(&roots, &[], &[]);
        assert_eq!(
            exhaustive_equivalence(&net, &rewritten),
            Equivalence::Indistinguishable
        );
        // One shared XNOR per level with biconditional nodes — far fewer
        // gates than one XNOR per node.
        let h = rewritten.op_histogram();
        assert!(
            h.get(&GateOp::Xnor).copied().unwrap_or(0) <= 8,
            "level comparators must be shared"
        );
    }

    #[test]
    fn rewrites_constants_and_literals() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let k1 = net.add_gate(GateOp::Const1, &[]);
        let nb = net.add_gate(GateOp::Not, &[b]);
        net.set_output("one", k1);
        net.set_output("a", a);
        net.set_output("nb", nb);
        roundtrip(&BbddManager::with_vars(2), &net);
        roundtrip(&RobddManager::with_vars(2), &net);
    }

    #[test]
    fn rewrite_and_verify_proves_equivalence_on_both_packages() {
        let net = benchgen::datapath::adder(6);
        for sift in [false, true] {
            let (rewritten, verdict) = rewrite_and_verify_bbdd(&net, sift);
            assert!(verdict.is_equivalent(), "bbdd sift={sift}");
            assert_eq!(rewritten.num_inputs(), net.num_inputs());
            assert_eq!(rewritten.num_outputs(), net.num_outputs());
            let mgr = RobddManager::with_vars(net.num_inputs());
            let (_, verdict) = rewrite_and_verify(&mgr, &net, sift);
            assert!(verdict.is_equivalent(), "robdd sift={sift}");
        }
    }

    #[test]
    fn rewrites_after_sifting() {
        let net = benchgen::datapath::adder(4);
        let mgr = BbddManager::with_vars(net.num_inputs());
        let roots = build_network(&mgr, &net);
        mgr.reorder();
        let rewritten = mgr.dump_network(&roots, &[], &[]);
        assert_eq!(
            exhaustive_equivalence(&net, &rewritten),
            Equivalence::Indistinguishable
        );
    }
}

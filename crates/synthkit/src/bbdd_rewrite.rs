//! BBDD → netlist conversion: the paper's datapath re-writing front-end
//! (§V-A).
//!
//! Every biconditional node becomes a 2:1 multiplexer whose select is the
//! comparator `PV ⊙ SV`; all nodes of one CVO level share that single
//! XNOR (the comparator is a property of the level, not of the node),
//! which is exactly why "BBDD nodes inherently act as two-variable
//! comparators" turns into compact mapped netlists on a library with
//! XNOR-2 cells. Shannon (R4) nodes pass the PV literal through, and
//! complement attributes become shared inverters.

use bbdd::{Bbdd, Edge};
use logicnet::cec::CecVerdict;
use logicnet::{GateOp, Network, Signal};
use std::collections::{HashMap, HashSet};

/// Convert the functions `roots` of `mgr` into a gate network.
///
/// Network input `i` corresponds to manager variable `i` (named from
/// `input_names` or `x{i}`); output port `k` takes `output_names[k]` (or
/// `f{k}`).
#[must_use]
pub fn bbdd_to_network(
    mgr: &Bbdd,
    roots: &[bbdd::BbddFn],
    input_names: &[String],
    output_names: &[String],
) -> Network {
    let n = mgr.num_vars();
    let mut net = Network::new("bbdd_rewrite");
    let inputs: Vec<Signal> = (0..n)
        .map(|i| {
            let default = format!("x{i}");
            let name = input_names.get(i).cloned().unwrap_or(default);
            net.add_input(&name)
        })
        .collect();

    // Shared per-level comparator XNOR(PV, SV), node signals (positive
    // polarity), shared inverters and the constant-one source.
    let mut level_sel: HashMap<usize, Signal> = HashMap::new();
    let mut node_sig: HashMap<u32, Signal> = HashMap::new();
    let mut inv_sig: HashMap<Signal, Signal> = HashMap::new();
    let mut const1: Option<Signal> = None;

    // Gather reachable nodes, sorted bottom-up so children exist first.
    let mut nodes: Vec<(u32, Edge)> = Vec::new();
    {
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<Edge> = roots.iter().map(bbdd::BbddFn::edge).collect();
        while let Some(e) = stack.pop() {
            let Some(id) = mgr.edge_id(e) else { continue };
            if !seen.insert(id) {
                continue;
            }
            let info = mgr.node_info(e).expect("non-constant edge");
            nodes.push((id, e.regular()));
            stack.push(info.neq);
            stack.push(info.eq);
        }
        nodes.sort_by_key(|&(_, e)| mgr.node_info(e).expect("node").level);
    }

    for (id, e) in nodes {
        let info = mgr.node_info(e).expect("node");
        let sig = if info.shannon {
            inputs[info.pv]
        } else {
            let sel = match level_sel.entry(info.level) {
                std::collections::hash_map::Entry::Occupied(o) => *o.get(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let pv = inputs[info.pv];
                    let s = match info.sv {
                        Some(sv) => net.add_gate(GateOp::Xnor, &[pv, inputs[sv]]),
                        None => pv, // bottom level: PV ⊙ 1 = PV
                    };
                    *v.insert(s)
                }
            };
            // Deliberately emit the generic multiplexer even for XNOR- and
            // constant-child node shapes: the uniform mux structure exposes
            // shared AND terms across sibling nodes to the back-end's
            // structural hashing, which measurably beats per-node
            // peepholing (e.g. 99 vs 141 cells on the 16-bit CLA adder).
            let t = edge_signal(&mut net, mgr, info.eq, &node_sig, &mut inv_sig, &mut const1);
            let f = edge_signal(
                &mut net,
                mgr,
                info.neq,
                &node_sig,
                &mut inv_sig,
                &mut const1,
            );
            net.add_gate(GateOp::Mux, &[sel, t, f])
        };
        node_sig.insert(id, sig);
    }

    for (k, root) in roots.iter().enumerate() {
        let default = format!("f{k}");
        let name = output_names.get(k).cloned().unwrap_or(default);
        let sig = edge_signal(
            &mut net,
            mgr,
            root.edge(),
            &node_sig,
            &mut inv_sig,
            &mut const1,
        );
        net.set_output(&name, sig);
    }
    net.check().expect("rewritten network must be valid");
    net
}

/// Rewrite `net` through a BBDD (optionally sifted) and *prove* the
/// rewritten netlist equivalent to the original with the combinational
/// equivalence checker — the self-verifying form of the paper's datapath
/// front-end. Returns the rewritten network together with the verdict
/// (which is [`CecVerdict::Equivalent`] unless this package is broken;
/// the verdict is returned rather than asserted so flows can log it).
#[must_use]
pub fn rewrite_and_verify(net: &Network, sift: bool) -> (Network, CecVerdict) {
    let mut mgr = Bbdd::new(net.num_inputs().max(1));
    let roots = logicnet::build::build_network(&mut mgr, net);
    if sift {
        mgr.sift(); // the output handles are the registry's roots
    }
    let in_names: Vec<String> = net
        .inputs()
        .iter()
        .map(|&s| net.signal_name(s).to_string())
        .collect();
    let out_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    let rewritten = bbdd_to_network(&mgr, &roots, &in_names, &out_names);
    let verdict = logicnet::cec::check_equivalence_bbdd(net, &rewritten);
    (rewritten, verdict)
}

fn edge_signal(
    net: &mut Network,
    mgr: &Bbdd,
    e: Edge,
    node_sig: &HashMap<u32, Signal>,
    inv_sig: &mut HashMap<Signal, Signal>,
    const1: &mut Option<Signal>,
) -> Signal {
    if e.is_constant() {
        let one = *const1.get_or_insert_with(|| net.add_gate(GateOp::Const1, &[]));
        if e == Edge::ONE {
            return one;
        }
        return *inv_sig
            .entry(one)
            .or_insert_with(|| net.add_gate(GateOp::Not, &[one]));
    }
    let id = mgr.edge_id(e).expect("non-constant");
    let base = *node_sig.get(&id).expect("children emitted before parents");
    if e.is_complemented() {
        *inv_sig
            .entry(base)
            .or_insert_with(|| net.add_gate(GateOp::Not, &[base]))
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicnet::build::build_network;
    use logicnet::sim::{exhaustive_equivalence, Equivalence};

    /// Round-trip: network → BBDD → network must preserve the function.
    fn roundtrip(net: &Network) {
        let mut mgr = Bbdd::new(net.num_inputs());
        let roots = build_network(&mut mgr, net);
        let in_names: Vec<String> = net
            .inputs()
            .iter()
            .map(|&s| net.signal_name(s).to_string())
            .collect();
        let out_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        let rewritten = bbdd_to_network(&mgr, &roots, &in_names, &out_names);
        assert_eq!(
            exhaustive_equivalence(net, &rewritten),
            Equivalence::Indistinguishable
        );
    }

    #[test]
    fn rewrites_full_adder() {
        let mut net = Network::new("fa");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let x = net.add_gate(GateOp::Xor, &[a, b]);
        let s = net.add_gate(GateOp::Xor, &[x, c]);
        let m = net.add_gate(GateOp::Maj, &[a, b, c]);
        net.set_output("s", s);
        net.set_output("co", m);
        roundtrip(&net);
    }

    #[test]
    fn rewrites_comparator_with_shared_level_xnors() {
        let net = benchgen::datapath::equality(4);
        let mut mgr = Bbdd::new(net.num_inputs());
        let roots = build_network(&mut mgr, &net);
        // Interleave operands so the XNOR pairs are adjacent in the CVO.
        let order: Vec<usize> = (0..4).flat_map(|i| [i, i + 4]).collect();
        mgr.reorder_to(&order);
        let rewritten = bbdd_to_network(&mgr, &roots, &[], &[]);
        assert_eq!(
            exhaustive_equivalence(&net, &rewritten),
            Equivalence::Indistinguishable
        );
        // One shared XNOR per level with biconditional nodes — far fewer
        // gates than one XNOR per node.
        let h = rewritten.op_histogram();
        assert!(
            h.get(&GateOp::Xnor).copied().unwrap_or(0) <= 8,
            "level comparators must be shared"
        );
    }

    #[test]
    fn rewrites_constants_and_literals() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let k1 = net.add_gate(GateOp::Const1, &[]);
        let nb = net.add_gate(GateOp::Not, &[b]);
        net.set_output("one", k1);
        net.set_output("a", a);
        net.set_output("nb", nb);
        roundtrip(&net);
    }

    #[test]
    fn rewrite_and_verify_proves_equivalence() {
        for sift in [false, true] {
            let net = benchgen::datapath::adder(6);
            let (rewritten, verdict) = rewrite_and_verify(&net, sift);
            assert!(verdict.is_equivalent(), "sift={sift}");
            assert_eq!(rewritten.num_inputs(), net.num_inputs());
            assert_eq!(rewritten.num_outputs(), net.num_outputs());
        }
    }

    #[test]
    fn rewrites_after_sifting() {
        let net = benchgen::datapath::adder(4);
        let mut mgr = Bbdd::new(net.num_inputs());
        let roots = build_network(&mut mgr, &net);
        mgr.sift();
        let rewritten = bbdd_to_network(&mgr, &roots, &[], &[]);
        let in_names: Vec<String> = net
            .inputs()
            .iter()
            .map(|&s| net.signal_name(s).to_string())
            .collect();
        let _ = in_names;
        assert_eq!(
            exhaustive_equivalence(&net, &rewritten),
            Equivalence::Indistinguishable
        );
    }
}

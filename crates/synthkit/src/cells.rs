//! The standard-cell library of the paper's synthesis case study (§V-B):
//! `MAJ-3, XOR-2, XNOR-2, NAND-2, NOR-2, INV`, characterized for a 22 nm
//! CMOS technology.
//!
//! The original characterization used the ASU Predictive Technology Model;
//! that data is not redistributable, so the numbers here are a documented,
//! internally consistent stand-in on the same technology scale (areas in
//! µm², pin-to-pin delays in ns). Because Table II compares two flows
//! through the *same* library, its area/delay *ratios* depend only on the
//! mapped structures, not on the absolute characterization.

use logicnet::GateOp;

/// One combinational standard cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Library name (e.g. `NAND2`).
    pub name: &'static str,
    /// Number of input pins (1–3).
    pub arity: usize,
    /// Function as a truth table over `arity` inputs; bit `m` is the
    /// output for the input minterm `m` (input 0 = LSB of `m`).
    pub table: u8,
    /// Cell area in µm².
    pub area_um2: f64,
    /// Worst pin-to-pin delay in ns.
    pub delay_ns: f64,
    /// Network operator used when exporting mapped netlists.
    pub op: GateOp,
}

impl Cell {
    /// Evaluate the cell on an input minterm.
    #[must_use]
    pub fn eval(&self, minterm: usize) -> bool {
        (self.table >> minterm) & 1 == 1
    }
}

/// An immutable cell library.
#[derive(Debug, Clone)]
pub struct CellLibrary {
    cells: Vec<Cell>,
    inv_index: usize,
}

impl CellLibrary {
    /// The paper's six-cell 22 nm library.
    #[must_use]
    pub fn paper_22nm() -> Self {
        let cells = vec![
            Cell {
                name: "INV",
                arity: 1,
                table: 0b01, // out = !a
                area_um2: 0.131,
                delay_ns: 0.009,
                op: GateOp::Not,
            },
            Cell {
                name: "NAND2",
                arity: 2,
                table: 0b0111,
                area_um2: 0.196,
                delay_ns: 0.013,
                op: GateOp::Nand,
            },
            Cell {
                name: "NOR2",
                arity: 2,
                table: 0b0001,
                area_um2: 0.196,
                delay_ns: 0.015,
                op: GateOp::Nor,
            },
            Cell {
                name: "XOR2",
                arity: 2,
                table: 0b0110,
                area_um2: 0.392,
                delay_ns: 0.021,
                op: GateOp::Xor,
            },
            Cell {
                name: "XNOR2",
                arity: 2,
                table: 0b1001,
                area_um2: 0.392,
                delay_ns: 0.021,
                op: GateOp::Xnor,
            },
            Cell {
                name: "MAJ3",
                arity: 3,
                table: 0b1110_1000,
                area_um2: 0.588,
                delay_ns: 0.027,
                op: GateOp::Maj,
            },
        ];
        let inv_index = 0;
        CellLibrary { cells, inv_index }
    }

    /// All cells.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The inverter (used by the polarity-aware mapper).
    #[must_use]
    pub fn inverter(&self) -> &Cell {
        &self.cells[self.inv_index]
    }

    /// Index of the inverter in [`CellLibrary::cells`].
    #[must_use]
    pub fn inverter_index(&self) -> usize {
        self.inv_index
    }

    /// Look a cell up by name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_the_papers_six_cells() {
        let lib = CellLibrary::paper_22nm();
        for name in ["INV", "NAND2", "NOR2", "XOR2", "XNOR2", "MAJ3"] {
            assert!(lib.by_name(name).is_some(), "{name} missing");
        }
        assert_eq!(lib.cells().len(), 6);
        assert_eq!(lib.inverter().name, "INV");
    }

    #[test]
    fn cell_functions_are_correct() {
        let lib = CellLibrary::paper_22nm();
        let nand = lib.by_name("NAND2").unwrap();
        assert!(nand.eval(0b00) && nand.eval(0b01) && nand.eval(0b10));
        assert!(!nand.eval(0b11));
        let maj = lib.by_name("MAJ3").unwrap();
        for m in 0..8usize {
            assert_eq!(maj.eval(m), m.count_ones() >= 2, "maj({m:03b})");
        }
        let xor = lib.by_name("XOR2").unwrap();
        for m in 0..4usize {
            assert_eq!(xor.eval(m), m.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn areas_and_delays_are_positive_and_ordered() {
        let lib = CellLibrary::paper_22nm();
        for c in lib.cells() {
            assert!(c.area_um2 > 0.0 && c.delay_ns > 0.0, "{}", c.name);
        }
        // Sanity of the characterization scale: INV < NAND2 < XOR2 < MAJ3.
        let a = |n: &str| lib.by_name(n).unwrap().area_um2;
        assert!(a("INV") < a("NAND2"));
        assert!(a("NAND2") < a("XOR2"));
        assert!(a("XOR2") < a("MAJ3"));
    }
}

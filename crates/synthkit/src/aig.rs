//! And-Inverter Graph: the technology-independent optimization layer of
//! the synthesis back-end (structural hashing, constant folding, level
//! bounds).

use logicnet::{GateOp, Network};
use std::collections::HashMap;

/// An AIG literal: node index with a complement bit. Node 0 is the
/// constant **false**, so literal 0 = `0` and literal 1 = `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Make a literal from node index and complement flag.
    #[must_use]
    pub fn new(node: u32, compl: bool) -> Self {
        Lit((node << 1) | compl as u32)
    }

    /// Target node index.
    #[must_use]
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Complement flag.
    #[must_use]
    pub fn compl(self) -> bool {
        self.0 & 1 == 1
    }

    /// `true` for the two constant literals.
    #[must_use]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

#[derive(Debug, Clone, Copy)]
enum AigNode {
    Const,
    Input(usize),
    And(Lit, Lit),
}

/// A structurally hashed And-Inverter Graph.
#[derive(Debug, Clone)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<(Lit, Lit), u32>,
    num_inputs: usize,
    outputs: Vec<(String, Lit)>,
    name: String,
}

impl Aig {
    /// An empty AIG with `num_inputs` primary inputs.
    #[must_use]
    pub fn new(name: &str, num_inputs: usize) -> Self {
        let mut nodes = vec![AigNode::Const];
        for i in 0..num_inputs {
            nodes.push(AigNode::Input(i));
        }
        Aig {
            nodes,
            strash: HashMap::new(),
            num_inputs,
            outputs: Vec::new(),
            name: name.to_string(),
        }
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Primary-input count.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Total node count (constant + inputs + ands).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes (the optimization metric).
    #[must_use]
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.num_inputs
    }

    /// The literal of primary input `i`.
    ///
    /// # Panics
    /// Panics if `i >= num_inputs()`.
    #[must_use]
    pub fn input(&self, i: usize) -> Lit {
        assert!(i < self.num_inputs);
        Lit::new(1 + i as u32, false)
    }

    /// Declared outputs.
    #[must_use]
    pub fn outputs(&self) -> &[(String, Lit)] {
        &self.outputs
    }

    /// Declare an output.
    pub fn set_output(&mut self, name: &str, lit: Lit) {
        self.outputs.push((name.to_string(), lit));
    }

    /// Fanins of an AND node, if `node` is one.
    #[must_use]
    pub fn and_fanins(&self, node: u32) -> Option<(Lit, Lit)> {
        match self.nodes[node as usize] {
            AigNode::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Is `node` a primary input?
    #[must_use]
    pub fn is_input(&self, node: u32) -> bool {
        matches!(self.nodes[node as usize], AigNode::Input(_))
    }

    /// Input index of an input node.
    #[must_use]
    pub fn input_index(&self, node: u32) -> Option<usize> {
        match self.nodes[node as usize] {
            AigNode::Input(i) => Some(i),
            _ => None,
        }
    }

    /// Conjunction with constant folding and structural hashing.
    pub fn and(&mut self, mut a: Lit, mut b: Lit) -> Lit {
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        if let Some(&n) = self.strash.get(&(a, b)) {
            return Lit::new(n, false);
        }
        let n = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(a, b));
        self.strash.insert((a, b), n);
        Lit::new(n, false)
    }

    /// Disjunction.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Parity.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let t0 = self.and(a, !b);
        let t1 = self.and(!a, b);
        self.or(t0, t1)
    }

    /// Multiplexer `s ? a : b`.
    pub fn mux(&mut self, s: Lit, a: Lit, b: Lit) -> Lit {
        let t0 = self.and(s, a);
        let t1 = self.and(!s, b);
        self.or(t0, t1)
    }

    /// Evaluate all outputs on an input vector (reference semantics for
    /// tests and equivalence checks).
    ///
    /// # Panics
    /// Panics if `values.len() != num_inputs()`.
    #[must_use]
    pub fn simulate(&self, values: &[bool]) -> Vec<bool> {
        assert_eq!(values.len(), self.num_inputs);
        let mut val = vec![false; self.nodes.len()];
        for (n, node) in self.nodes.iter().enumerate() {
            val[n] = match *node {
                AigNode::Const => false,
                AigNode::Input(i) => values[i],
                AigNode::And(a, b) => {
                    let va = val[a.node() as usize] ^ a.compl();
                    let vb = val[b.node() as usize] ^ b.compl();
                    va && vb
                }
            };
        }
        self.outputs
            .iter()
            .map(|(_, l)| val[l.node() as usize] ^ l.compl())
            .collect()
    }

    /// Logic depth in AND levels (ignoring inverters).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut lvl = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for (n, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = *node {
                lvl[n] = 1 + lvl[a.node() as usize].max(lvl[b.node() as usize]);
                max = max.max(lvl[n]);
            }
        }
        max
    }

    /// Convert a gate network into a structurally hashed AIG.
    ///
    /// # Panics
    /// Panics if the network fails its structural check.
    #[must_use]
    pub fn from_network(net: &Network) -> Self {
        net.check().expect("network must be valid");
        let mut aig = Aig::new(net.name(), net.num_inputs());
        let mut wire: Vec<Option<Lit>> = vec![None; net.num_signals()];
        for (i, s) in net.inputs().iter().enumerate() {
            wire[s.index()] = Some(aig.input(i));
        }
        for g in net.gates() {
            let ins: Vec<Lit> = g
                .inputs
                .iter()
                .map(|s| wire[s.index()].expect("topological"))
                .collect();
            let out = match g.op {
                GateOp::Const0 => Lit::FALSE,
                GateOp::Const1 => Lit::TRUE,
                GateOp::Buf => ins[0],
                GateOp::Not => !ins[0],
                GateOp::And | GateOp::Nand => {
                    let mut acc = ins[0];
                    for &x in &ins[1..] {
                        acc = aig.and(acc, x);
                    }
                    if g.op == GateOp::Nand {
                        !acc
                    } else {
                        acc
                    }
                }
                GateOp::Or | GateOp::Nor => {
                    let mut acc = ins[0];
                    for &x in &ins[1..] {
                        acc = aig.or(acc, x);
                    }
                    if g.op == GateOp::Nor {
                        !acc
                    } else {
                        acc
                    }
                }
                GateOp::Xor | GateOp::Xnor => {
                    let mut acc = ins[0];
                    for &x in &ins[1..] {
                        acc = aig.xor(acc, x);
                    }
                    if g.op == GateOp::Xnor {
                        !acc
                    } else {
                        acc
                    }
                }
                GateOp::Maj => {
                    let ab = aig.and(ins[0], ins[1]);
                    let bc = aig.and(ins[1], ins[2]);
                    let ac = aig.and(ins[0], ins[2]);
                    let t = aig.or(ab, bc);
                    aig.or(t, ac)
                }
                GateOp::Mux => aig.mux(ins[0], ins[1], ins[2]),
            };
            wire[g.output.index()] = Some(out);
        }
        for (port, s) in net.outputs() {
            aig.set_output(port, wire[s.index()].expect("driven output"));
        }
        aig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicnet::{GateOp, Network};

    #[test]
    fn constant_folding_rules() {
        let mut aig = Aig::new("t", 2);
        let a = aig.input(0);
        let b = aig.input(1);
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(a, Lit::TRUE), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        let ab1 = aig.and(a, b);
        let ab2 = aig.and(b, a);
        assert_eq!(ab1, ab2, "structural hashing is order-insensitive");
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn simulate_mux_and_xor() {
        let mut aig = Aig::new("t", 3);
        let (s, a, b) = (aig.input(0), aig.input(1), aig.input(2));
        let m = aig.mux(s, a, b);
        let x = aig.xor(a, b);
        aig.set_output("m", m);
        aig.set_output("x", x);
        for i in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|k| (i >> k) & 1 == 1).collect();
            let o = aig.simulate(&v);
            assert_eq!(o[0], if v[0] { v[1] } else { v[2] });
            assert_eq!(o[1], v[1] ^ v[2]);
        }
    }

    #[test]
    fn from_network_preserves_function() {
        let mut net = Network::new("fa");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let x = net.add_gate(GateOp::Xor, &[a, b, c]);
        let m = net.add_gate(GateOp::Maj, &[a, b, c]);
        let k = net.add_gate(GateOp::Nor, &[x, m]);
        net.set_output("x", x);
        net.set_output("m", m);
        net.set_output("k", k);
        let aig = Aig::from_network(&net);
        for i in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|k| (i >> k) & 1 == 1).collect();
            assert_eq!(aig.simulate(&v), net.simulate(&v), "{v:?}");
        }
        assert!(aig.depth() > 0);
    }

    #[test]
    fn strash_shares_across_gates() {
        let mut net = Network::new("share");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateOp::And, &[a, b]);
        let g2 = net.add_gate(GateOp::And, &[b, a]); // same function
        let o = net.add_gate(GateOp::Xor, &[g1, g2]); // constant 0
        net.set_output("o", o);
        let aig = Aig::from_network(&net);
        assert_eq!(aig.outputs()[0].1, Lit::FALSE, "x ^ x folds to 0");
    }
}

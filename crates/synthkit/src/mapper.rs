//! Priority-cut technology mapping onto the standard-cell library, with
//! polarity-aware area-oriented covering and topological static timing —
//! the back-end both Table-II flows share.
//!
//! The mapper enumerates 3-feasible cuts per AIG node, matches each cut's
//! local function against every library cell under all pin permutations
//! (both output polarities, complements being free in the AIG), and covers
//! the graph by dynamic programming on `(node, polarity)` with inverter
//! insertion where no complemented match exists.

use crate::aig::{Aig, Lit};
use crate::cells::CellLibrary;
use logicnet::{GateOp, Network, Signal};
use std::collections::HashMap;

const MAX_LEAVES: usize = 3;
const CUTS_PER_NODE: usize = 8;

/// Truth-table patterns of the three cut variables.
const VAR_TT: [u8; 3] = [0xAA, 0xCC, 0xF0];

/// A mapped signal: an AIG node in a polarity (`true` = complemented).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MSig {
    /// AIG node index.
    pub node: u32,
    /// `true` when this signal is the complement of the node's function.
    pub negated: bool,
}

/// One placed cell.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Index into the library's cell list.
    pub cell: usize,
    /// Input connections (produced signals or primary inputs in positive
    /// polarity).
    pub inputs: Vec<MSig>,
    /// The signal this instance produces.
    pub output: MSig,
}

/// The result of technology mapping.
#[derive(Debug, Clone)]
pub struct MappedNetlist {
    /// Placed instances in topological order.
    pub instances: Vec<Instance>,
    /// Output ports: name, driving signal, or constant.
    pub outputs: Vec<(String, MappedOutput)>,
    /// Number of primary inputs of the mapped design.
    pub num_inputs: usize,
    /// Total cell area (µm²).
    pub area_um2: f64,
    /// Critical-path delay (ns) from the topological STA.
    pub delay_ns: f64,
}

/// What drives an output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappedOutput {
    /// A mapped signal.
    Sig(MSig),
    /// A constant.
    Const(bool),
}

impl MappedNetlist {
    /// Number of placed cells.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.instances.len()
    }

    /// Export as a gate [`Network`] (for equivalence checking); input `i`
    /// is named `x{i}` unless `input_names` provides a name.
    ///
    /// # Panics
    /// Panics on malformed instance graphs (internal error).
    #[must_use]
    pub fn to_network(&self, lib: &CellLibrary, input_names: &[String]) -> Network {
        let mut net = Network::new("mapped");
        let mut pi: Vec<Signal> = Vec::with_capacity(self.num_inputs);
        for i in 0..self.num_inputs {
            let default = format!("x{i}");
            let name = input_names.get(i).cloned().unwrap_or(default);
            pi.push(net.add_input(&name));
        }
        let mut produced: HashMap<MSig, Signal> = HashMap::new();
        for (i, s) in pi.iter().enumerate() {
            // Primary inputs are available in positive polarity for free.
            produced.insert(
                MSig {
                    node: (i + 1) as u32,
                    negated: false,
                },
                *s,
            );
        }
        for inst in &self.instances {
            let cell = &lib.cells()[inst.cell];
            let ins: Vec<Signal> = inst
                .inputs
                .iter()
                .map(|m| *produced.get(m).expect("instance inputs precede outputs"))
                .collect();
            let sig = net.add_gate(cell.op, &ins);
            produced.insert(inst.output, sig);
        }
        for (name, out) in &self.outputs {
            let sig = match out {
                MappedOutput::Const(b) => {
                    net.add_gate(if *b { GateOp::Const1 } else { GateOp::Const0 }, &[])
                }
                MappedOutput::Sig(m) => *produced.get(m).expect("driven output"),
            };
            net.set_output(name, sig);
        }
        net.check().expect("mapped network must be valid");
        net
    }
}

#[derive(Debug, Clone)]
struct CutMatch {
    cut: Vec<u32>,
    cell: usize,
    /// `perm[j]` = index (into `cut`) of the leaf wired to cell pin `j`.
    perm: Vec<usize>,
    /// `neg[j]` = cell pin `j` reads the complemented leaf (costs an
    /// inverter on that leaf, shared across the cover).
    neg: Vec<bool>,
}

#[derive(Debug, Clone)]
enum Choice {
    /// Free: a primary input in positive polarity.
    Wire,
    /// An inverter on the opposite polarity.
    Inv,
    /// A matched cut.
    Match(CutMatch),
}

/// Structural scope of the mapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapStyle {
    /// Cuts may cross fanout boundaries (modern DAG-aware mapping).
    #[default]
    DagAware,
    /// Cuts must be fanout-free trees — the behaviour of classic
    /// tree-covering structural mappers (DAGON lineage), which is how the
    /// 2014-era commercial back-end of the paper's Table II behaves: logic
    /// reconvergence hidden behind a fanout point is never re-discovered.
    TreeLocal,
}

/// Map `aig` onto `lib` (area-oriented, DAG-aware).
///
/// # Panics
/// Panics if some node function cannot be implemented, which cannot happen
/// with a library containing an inverter and a complete 2-input cell
/// (NAND2 is universal).
#[must_use]
pub fn map(aig: &Aig, lib: &CellLibrary) -> MappedNetlist {
    map_with(aig, lib, MapStyle::DagAware)
}

/// Map with an explicit [`MapStyle`].
///
/// # Panics
/// See [`map`].
#[must_use]
pub fn map_with(aig: &Aig, lib: &CellLibrary, style: MapStyle) -> MappedNetlist {
    let n = aig.num_nodes();
    let inv_area = lib.inverter().area_um2;

    // Fanout counts (tree-local mode rejects cuts hiding multi-fanout
    // internal nodes).
    let mut fanout = vec![0u32; n];
    for node in 0..n as u32 {
        if let Some((a, b)) = aig.and_fanins(node) {
            fanout[a.node() as usize] += 1;
            fanout[b.node() as usize] += 1;
        }
    }
    for (_, l) in aig.outputs() {
        if !l.is_const() {
            fanout[l.node() as usize] += 1;
        }
    }

    // ---- cut enumeration -------------------------------------------------
    let mut cuts: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
    for node in 0..n as u32 {
        if aig.and_fanins(node).is_none() {
            cuts[node as usize] = vec![vec![node]];
            continue;
        }
        let (a, b) = aig.and_fanins(node).expect("and node");
        let mut set: Vec<Vec<u32>> = Vec::new();
        for ca in &cuts[a.node() as usize] {
            for cb in &cuts[b.node() as usize] {
                let mut merged: Vec<u32> = ca.clone();
                for &l in cb {
                    if !merged.contains(&l) {
                        merged.push(l);
                    }
                }
                if merged.len() <= MAX_LEAVES {
                    merged.sort_unstable();
                    if !set.contains(&merged) {
                        set.push(merged);
                    }
                }
            }
        }
        set.push(vec![node]);
        set.sort_by_key(Vec::len);
        set.truncate(CUTS_PER_NODE);
        cuts[node as usize] = set;
    }

    // ---- matching + covering DP ------------------------------------------
    // best[node][pol]: pol 0 = positive, 1 = negated.
    let mut best = vec![[f64::INFINITY; 2]; n];
    let mut choice: Vec<[Option<Choice>; 2]> = vec![[None, None]; n];
    // Constant node: implemented by the output-port constant path.
    best[0] = [0.0, 0.0];
    for node in 1..n as u32 {
        let ni = node as usize;
        if aig.is_input(node) {
            best[ni][0] = 0.0;
            choice[ni][0] = Some(Choice::Wire);
            best[ni][1] = inv_area;
            choice[ni][1] = Some(Choice::Inv);
            continue;
        }
        for cut in &cuts[ni] {
            if cut.len() == 1 && cut[0] == node {
                continue; // the trivial cut has no structure to match
            }
            if style == MapStyle::TreeLocal && !cone_is_tree(aig, node, cut, &fanout) {
                continue;
            }
            let tt = cut_function(aig, node, cut);
            let k = cut.len();
            for (ci, cell) in lib.cells().iter().enumerate() {
                if cell.arity != k {
                    continue;
                }
                for perm in permutations(k) {
                    for mask in 0..(1u32 << k) {
                        let neg: Vec<bool> = (0..k).map(|j| (mask >> j) & 1 == 1).collect();
                        let ctt = cell_tt3(cell.table, cell.arity, &perm, &neg);
                        // Cost of the leaves in the polarity each pin needs.
                        let mut leaf_cost = 0.0f64;
                        for j in 0..k {
                            let leaf = cut[perm[j]] as usize;
                            leaf_cost += best[leaf][neg[j] as usize];
                        }
                        for pol in 0..2usize {
                            let want = if pol == 0 { tt } else { !tt };
                            if ctt == want {
                                let cost = cell.area_um2 + leaf_cost;
                                if cost < best[ni][pol] {
                                    best[ni][pol] = cost;
                                    choice[ni][pol] = Some(Choice::Match(CutMatch {
                                        cut: cut.clone(),
                                        cell: ci,
                                        perm: perm.clone(),
                                        neg: neg.clone(),
                                    }));
                                }
                            }
                        }
                    }
                }
            }
        }
        // Inverter relaxation between the two polarities.
        for _ in 0..2 {
            if best[ni][0] + inv_area < best[ni][1] {
                best[ni][1] = best[ni][0] + inv_area;
                choice[ni][1] = Some(Choice::Inv);
            }
            if best[ni][1] + inv_area < best[ni][0] {
                best[ni][0] = best[ni][1] + inv_area;
                choice[ni][0] = Some(Choice::Inv);
            }
        }
        assert!(
            best[ni][0].is_finite() && best[ni][1].is_finite(),
            "unmappable node {node}: library must contain NAND2 + INV"
        );
    }

    // ---- cover extraction -------------------------------------------------
    let mut instances: Vec<Instance> = Vec::new();
    let mut emitted: HashMap<MSig, usize> = HashMap::new();
    let mut outputs: Vec<(String, MappedOutput)> = Vec::new();

    fn emit(
        aig: &Aig,
        lib: &CellLibrary,
        choice: &[[Option<Choice>; 2]],
        want: MSig,
        instances: &mut Vec<Instance>,
        emitted: &mut HashMap<MSig, usize>,
    ) {
        if emitted.contains_key(&want) {
            return;
        }
        if aig.is_input(want.node) && !want.negated {
            return; // free wire
        }
        let ch = choice[want.node as usize][want.negated as usize]
            .as_ref()
            .expect("mapped choice");
        match ch {
            Choice::Wire => {}
            Choice::Inv => {
                let src = MSig {
                    node: want.node,
                    negated: !want.negated,
                };
                emit(aig, lib, choice, src, instances, emitted);
                instances.push(Instance {
                    cell: lib.inverter_index(),
                    inputs: vec![src],
                    output: want,
                });
                emitted.insert(want, instances.len() - 1);
            }
            Choice::Match(m) => {
                let pins: Vec<MSig> = m
                    .perm
                    .iter()
                    .zip(&m.neg)
                    .map(|(&pi, &ng)| MSig {
                        node: m.cut[pi],
                        negated: ng,
                    })
                    .collect();
                for p in &pins {
                    emit(aig, lib, choice, *p, instances, emitted);
                }
                instances.push(Instance {
                    cell: m.cell,
                    inputs: pins,
                    output: want,
                });
                emitted.insert(want, instances.len() - 1);
            }
        }
    }

    for (name, lit) in aig.outputs() {
        if lit.is_const() {
            outputs.push((name.clone(), MappedOutput::Const(*lit == Lit::TRUE)));
            continue;
        }
        let want = MSig {
            node: lit.node(),
            negated: lit.compl(),
        };
        emit(aig, lib, &choice, want, &mut instances, &mut emitted);
        outputs.push((name.clone(), MappedOutput::Sig(want)));
    }

    // ---- area + static timing ----------------------------------------------
    let area_um2: f64 = instances.iter().map(|i| lib.cells()[i.cell].area_um2).sum();
    let mut arrival: HashMap<MSig, f64> = HashMap::new();
    let mut delay_ns: f64 = 0.0;
    for inst in &instances {
        let cell = &lib.cells()[inst.cell];
        let in_arr = inst
            .inputs
            .iter()
            .map(|m| arrival.get(m).copied().unwrap_or(0.0))
            .fold(0.0f64, f64::max);
        let t = in_arr + cell.delay_ns;
        arrival.insert(inst.output, t);
        delay_ns = delay_ns.max(t);
    }

    MappedNetlist {
        instances,
        outputs,
        num_inputs: aig.num_inputs(),
        area_um2,
        delay_ns,
    }
}

/// Does the cone of `cut` under `node` form a fanout-free tree? (Every
/// internal cone node except the root must have a single fanout.)
fn cone_is_tree(aig: &Aig, node: u32, cut: &[u32], fanout: &[u32]) -> bool {
    fn go(aig: &Aig, n: u32, root: u32, cut: &[u32], fanout: &[u32]) -> bool {
        if cut.contains(&n) {
            return true;
        }
        if n != root && fanout[n as usize] > 1 {
            return false;
        }
        match aig.and_fanins(n) {
            Some((a, b)) => {
                go(aig, a.node(), root, cut, fanout) && go(aig, b.node(), root, cut, fanout)
            }
            None => true,
        }
    }
    go(aig, node, node, cut, fanout)
}

/// Truth table (3-var, 8-bit) of `node`'s function over the leaves of
/// `cut` (positive leaf variables).
fn cut_function(aig: &Aig, node: u32, cut: &[u32]) -> u8 {
    fn go(aig: &Aig, node: u32, cut: &[u32], memo: &mut HashMap<u32, u8>) -> u8 {
        if let Some(pos) = cut.iter().position(|&l| l == node) {
            return VAR_TT[pos];
        }
        if let Some(&tt) = memo.get(&node) {
            return tt;
        }
        let (a, b) = aig
            .and_fanins(node)
            .expect("cut leaves must cover the cone");
        let ta = go(aig, a.node(), cut, memo) ^ if a.compl() { 0xFF } else { 0 };
        let tb = go(aig, b.node(), cut, memo) ^ if b.compl() { 0xFF } else { 0 };
        let tt = ta & tb;
        memo.insert(node, tt);
        tt
    }
    let mut memo = HashMap::new();
    go(aig, node, cut, &mut memo)
}

/// Expand a cell's truth table to the 3-variable domain with cell pin `j`
/// reading cut variable `perm[j]`, complemented when `neg[j]`.
fn cell_tt3(table: u8, arity: usize, perm: &[usize], neg: &[bool]) -> u8 {
    let mut out = 0u8;
    for m in 0..8usize {
        let mut pins = 0usize;
        for (j, &src) in perm.iter().enumerate().take(arity) {
            if ((m >> src) & 1 == 1) != neg[j] {
                pins |= 1 << j;
            }
        }
        if (table >> pins) & 1 == 1 {
            out |= 1 << m;
        }
    }
    out
}

fn permutations(k: usize) -> Vec<Vec<usize>> {
    match k {
        1 => vec![vec![0]],
        2 => vec![vec![0, 1], vec![1, 0]],
        3 => vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ],
        _ => unreachable!("cut width limited to 3"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicnet::sim::{exhaustive_equivalence, Equivalence};
    use logicnet::Network;

    fn map_and_verify(net: &Network) -> MappedNetlist {
        let lib = CellLibrary::paper_22nm();
        let aig = Aig::from_network(net);
        let mapped = map(&aig, &lib);
        let names: Vec<String> = net
            .inputs()
            .iter()
            .map(|&s| net.signal_name(s).to_string())
            .collect();
        let back = mapped.to_network(&lib, &names);
        assert_eq!(
            exhaustive_equivalence(net, &back),
            Equivalence::Indistinguishable,
            "mapping must preserve the function"
        );
        mapped
    }

    #[test]
    fn maps_xor_to_single_cell() {
        let mut net = Network::new("x");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let y = net.add_gate(GateOp::Xor, &[a, b]);
        net.set_output("y", y);
        let mapped = map_and_verify(&net);
        assert_eq!(mapped.gate_count(), 1, "XOR2 should cover the cone");
        let lib = CellLibrary::paper_22nm();
        assert_eq!(lib.cells()[mapped.instances[0].cell].name, "XOR2");
    }

    #[test]
    fn maps_majority_to_single_cell() {
        let mut net = Network::new("m");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let y = net.add_gate(GateOp::Maj, &[a, b, c]);
        net.set_output("y", y);
        let mapped = map_and_verify(&net);
        assert_eq!(mapped.gate_count(), 1, "MAJ3 should cover the cone");
    }

    #[test]
    fn maps_full_adder_compactly() {
        let mut net = Network::new("fa");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let ab = net.add_gate(GateOp::Xor, &[a, b]);
        let s = net.add_gate(GateOp::Xor, &[ab, c]);
        let m = net.add_gate(GateOp::Maj, &[a, b, c]);
        net.set_output("s", s);
        net.set_output("co", m);
        let mapped = map_and_verify(&net);
        assert!(
            mapped.gate_count() <= 3,
            "2×XOR2 + MAJ3 expected, got {}",
            mapped.gate_count()
        );
        assert!(mapped.area_um2 > 0.0 && mapped.delay_ns > 0.0);
    }

    #[test]
    fn maps_inverted_and_constant_outputs() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let y = net.add_gate(GateOp::Nand, &[a, b]);
        let z = net.add_gate(GateOp::Not, &[a]);
        let k = net.add_gate(GateOp::Const1, &[]);
        net.set_output("y", y);
        net.set_output("z", z);
        net.set_output("k", k);
        let mapped = map_and_verify(&net);
        assert!(mapped.gate_count() <= 2, "NAND2 + INV expected");
    }

    #[test]
    fn sta_delay_grows_with_chains() {
        let lib = CellLibrary::paper_22nm();
        // XOR chain over *distinct* inputs: cannot collapse, so deeper
        // chains must report longer critical paths.
        let mk = |len: usize| {
            let mut net = Network::new("chain");
            let mut s = net.add_input("a");
            for i in 0..len {
                let x = net.add_input(&format!("x{i}"));
                s = net.add_gate(GateOp::Xor, &[s, x]);
            }
            net.set_output("y", s);
            let aig = Aig::from_network(&net);
            map(&aig, &lib).delay_ns
        };
        assert!(mk(9) > mk(1), "longer chains must be slower");
    }

    #[test]
    fn shared_nodes_are_emitted_once() {
        let mut net = Network::new("share");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let x = net.add_gate(GateOp::Xor, &[a, b]);
        net.set_output("y1", x);
        net.set_output("y2", x);
        let mapped = map_and_verify(&net);
        assert_eq!(mapped.gate_count(), 1, "shared output emitted once");
    }
}

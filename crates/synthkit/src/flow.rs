//! The two competing synthesis flows of Table II.
//!
//! * [`synthesize_direct`] — the *commercial-flow stand-in*: the RTL
//!   netlist goes straight through technology-independent optimization
//!   (AIG structural hashing + constant folding) and technology mapping.
//! * [`synthesize_dd_first_with`] — the paper's proposal, generic over
//!   the decision-diagram backend ([`DiagramRewrite`]): the netlist is
//!   first rewritten through a diagram manager (built with the file
//!   order, then reordered), dumped back as a netlist, and *the same*
//!   back-end maps it. Any area/delay difference is attributable to the
//!   diagram restructuring, exactly as in the paper's §V-B methodology.
//!   [`synthesize_bbdd_first`] instantiates it with the BBDD package (the
//!   paper's Table II); the ROBDD managers drop in for a BDD-first
//!   comparison flow.

use crate::aig::Aig;
use crate::cells::CellLibrary;
use crate::mapper::{map_with, MapStyle, MappedNetlist};
use crate::rewrite::DiagramRewrite;
use bbdd::BbddManager;
use logicnet::build::build_network;
use logicnet::Network;

/// Outcome of one synthesis run (one Table-II cell triple).
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Total cell area (µm²).
    pub area_um2: f64,
    /// Critical-path delay (ns).
    pub delay_ns: f64,
    /// Number of placed cells.
    pub gate_count: usize,
    /// The mapped netlist (for verification and export).
    pub mapped: MappedNetlist,
}

/// Extra information from the diagram front-end run.
#[derive(Debug, Clone, Copy)]
pub struct BbddFrontendInfo {
    /// Shared node count after build (file variable order).
    pub nodes_built: usize,
    /// Shared node count after sifting.
    pub nodes_sifted: usize,
}

/// Synthesize `net` directly (the commercial-flow stand-in), DAG-aware.
#[must_use]
pub fn synthesize_direct(net: &Network, lib: &CellLibrary) -> FlowResult {
    synthesize_direct_with(net, lib, MapStyle::DagAware)
}

/// Synthesize `net` directly with an explicit mapping style.
/// `MapStyle::TreeLocal` models the 2014-era structural back-end of the
/// paper's Table II (tree covering, no reconvergence across fanout).
#[must_use]
pub fn synthesize_direct_with(net: &Network, lib: &CellLibrary, style: MapStyle) -> FlowResult {
    let aig = Aig::from_network(net);
    let mapped = map_with(&aig, lib, style);
    FlowResult {
        area_um2: mapped.area_um2,
        delay_ns: mapped.delay_ns,
        gate_count: mapped.gate_count(),
        mapped,
    }
}

/// Synthesize `net` with the BBDD re-writing front-end, then the same
/// back-end. `sift` enables chain-variable reordering before the dump.
#[must_use]
pub fn synthesize_bbdd_first(
    net: &Network,
    lib: &CellLibrary,
    sift: bool,
) -> (FlowResult, BbddFrontendInfo) {
    synthesize_bbdd_first_with(net, lib, sift, MapStyle::DagAware)
}

/// BBDD front-end + back-end with an explicit mapping style (the paper's
/// Table-II instantiation of [`synthesize_dd_first_with`]).
#[must_use]
pub fn synthesize_bbdd_first_with(
    net: &Network,
    lib: &CellLibrary,
    sift: bool,
    style: MapStyle,
) -> (FlowResult, BbddFrontendInfo) {
    let mgr = BbddManager::with_vars(net.num_inputs());
    synthesize_dd_first_with(&mgr, net, lib, sift, style)
}

/// Diagram front-end + back-end, written once against the
/// [`DiagramRewrite`] capability: build `net` into `mgr` (file variable
/// order), optionally reorder, dump the diagram back as a netlist, and
/// hand it to the same technology back-end as [`synthesize_direct_with`].
#[must_use]
pub fn synthesize_dd_first_with<M: DiagramRewrite>(
    mgr: &M,
    net: &Network,
    lib: &CellLibrary,
    reorder: bool,
    style: MapStyle,
) -> (FlowResult, BbddFrontendInfo) {
    let roots = build_network(mgr, net);
    let nodes_built = mgr.shared_node_count(&roots);
    if reorder {
        let _ = mgr.reorder(); // the output handles are the registry's roots
    }
    let nodes_sifted = mgr.shared_node_count(&roots);
    let in_names: Vec<String> = net
        .inputs()
        .iter()
        .map(|&s| net.signal_name(s).to_string())
        .collect();
    let out_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    let rewritten = mgr.dump_network(&roots, &in_names, &out_names);
    let result = synthesize_direct_with(&rewritten, lib, style);
    (
        result,
        BbddFrontendInfo {
            nodes_built,
            nodes_sifted,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicnet::sim::{random_equivalence, Equivalence};

    fn verify_flow(net: &Network, lib: &CellLibrary, result: &FlowResult) {
        let names: Vec<String> = net
            .inputs()
            .iter()
            .map(|&s| net.signal_name(s).to_string())
            .collect();
        let back = result.mapped.to_network(lib, &names);
        assert_eq!(
            random_equivalence(net, &back, 16, 0xF10F),
            Equivalence::Indistinguishable,
            "synthesis must preserve the function"
        );
    }

    #[test]
    fn direct_flow_is_functionally_correct() {
        let lib = CellLibrary::paper_22nm();
        for net in [
            benchgen::datapath::adder(8),
            benchgen::datapath::magnitude(8),
            benchgen::datapath::equality(8),
        ] {
            let r = synthesize_direct(&net, &lib);
            assert!(r.gate_count > 0);
            verify_flow(&net, &lib, &r);
        }
    }

    #[test]
    fn bbdd_flow_is_functionally_correct() {
        let lib = CellLibrary::paper_22nm();
        for net in [
            benchgen::datapath::adder(8),
            benchgen::datapath::magnitude(8),
            benchgen::datapath::equality(8),
        ] {
            let (r, info) = synthesize_bbdd_first(&net, &lib, true);
            assert!(r.gate_count > 0);
            assert!(info.nodes_sifted <= info.nodes_built);
            verify_flow(&net, &lib, &r);
        }
    }

    #[test]
    fn bbdd_flow_wins_on_cla_adder() {
        // The Table-II effect measured with the paper's methodology: the
        // operator-expanded netlist (here the carry-lookahead structure an
        // arithmetic generator instantiates for `+`) is fed to both flows
        // and mapped by the same tree-local structural back-end. The BBDD
        // front-end canonicalizes the lookahead bloat into the compact
        // comparator/mux structure and wins on area, as in the paper.
        let lib = CellLibrary::paper_22nm();
        let net = benchgen::datapath::Datapath::Adder { width: 16 }.commercial_implementation();
        let direct = synthesize_direct_with(&net, &lib, MapStyle::TreeLocal);
        let (bbdd_flow, _) = synthesize_bbdd_first_with(&net, &lib, true, MapStyle::TreeLocal);
        assert!(
            bbdd_flow.area_um2 < direct.area_um2,
            "BBDD flow {:.2} µm² must beat direct {:.2} µm²",
            bbdd_flow.area_um2,
            direct.area_um2
        );
        assert!(
            bbdd_flow.gate_count < direct.gate_count,
            "BBDD flow {} gates must beat direct {}",
            bbdd_flow.gate_count,
            direct.gate_count
        );
        verify_flow(&net, &lib, &bbdd_flow);
    }

    #[test]
    fn magnitude_flows_are_both_compact_and_correct() {
        // Divergence from the paper (see the notes in CHANGES.md): our
        // baseline's dead-logic elimination already prunes the subtractor
        // down to the optimal borrow chain, so the commercial bloat the
        // paper measured (186 gates) does not occur and the BBDD flow has
        // nothing left to win; both flows stay within a small factor.
        let lib = CellLibrary::paper_22nm();
        let net = benchgen::datapath::Datapath::Magnitude { width: 16 }.commercial_implementation();
        let direct = synthesize_direct_with(&net, &lib, MapStyle::TreeLocal);
        let (bbdd_flow, _) = synthesize_bbdd_first_with(&net, &lib, true, MapStyle::TreeLocal);
        verify_flow(&net, &lib, &direct);
        verify_flow(&net, &lib, &bbdd_flow);
        assert!(bbdd_flow.area_um2 <= 3.0 * direct.area_um2);
    }

    #[test]
    fn tree_local_mapping_is_correct_on_arithmetic() {
        // Neither mapping style strictly dominates the other in area (both
        // covers come from a heuristic, leaf-double-counting DP), so the
        // invariants are functional correctness and a sane cost envelope.
        let lib = CellLibrary::paper_22nm();
        for net in [
            benchgen::datapath::adder_cla(8),
            benchgen::datapath::barrel(8),
        ] {
            let dag = synthesize_direct_with(&net, &lib, MapStyle::DagAware);
            let tree = synthesize_direct_with(&net, &lib, MapStyle::TreeLocal);
            assert!(
                tree.area_um2 <= 4.0 * dag.area_um2,
                "{}: dag {} vs tree {}",
                net.name(),
                dag.area_um2,
                tree.area_um2
            );
            verify_flow(&net, &lib, &dag);
            verify_flow(&net, &lib, &tree);
        }
    }
}

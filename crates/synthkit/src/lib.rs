//! # synthkit — the datapath synthesis flow of the BBDD case study
//!
//! Section V of the DATE 2014 paper uses the BBDD package as a *front-end*
//! to a commercial synthesis tool: datapaths are rewritten as BBDDs, the
//! BBDD structure is dumped back as a netlist, and a fixed standard-cell
//! back-end synthesizes both the original RTL and the rewritten netlist
//! onto a 22 nm library of `MAJ-3, XOR-2, XNOR-2, NAND-2, NOR-2, INV`
//! cells. This crate provides every piece of that experiment:
//!
//! * [`cells`] — the paper's exact cell set with a PTM-22nm-inspired
//!   area/delay characterization;
//! * [`aig`] — an And-Inverter Graph with structural hashing and constant
//!   folding (the technology-independent optimizer);
//! * [`mapper`] — a priority-cut, polarity-aware technology mapper with
//!   area-oriented covering and topological static timing;
//! * [`rewrite`] — diagram → netlist conversion behind the manager-generic
//!   [`rewrite::DiagramRewrite`] capability: the BBDD dump (one XNOR per
//!   CVO level, shared, plus one MUX per node — the comparator-based
//!   structure that makes BBDDs "the natural design abstraction" of §V-A)
//!   and its Shannon-mux ROBDD analogue;
//! * [`flow`] — the two competing flows of Table II:
//!   [`flow::synthesize_direct`] (the commercial-flow stand-in) and
//!   [`flow::synthesize_dd_first_with`] (diagram rewriting + the same
//!   back-end, generic over the backend; [`flow::synthesize_bbdd_first`]
//!   is the paper's BBDD instantiation).
//!
//! ```
//! use synthkit::cells::CellLibrary;
//! use synthkit::flow::synthesize_direct;
//!
//! let net = benchgen::datapath::adder(8);
//! let lib = CellLibrary::paper_22nm();
//! let result = synthesize_direct(&net, &lib);
//! assert!(result.gate_count > 0 && result.area_um2 > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aig;
pub mod cells;
pub mod flow;
pub mod mapper;
pub mod rewrite;

//! Property-based verification of the synthesis substrate: both mapping
//! styles and the BBDD rewriting front-end must preserve functions on
//! random networks.

use bbdd::prelude::*;
use logicnet::build::build_network;
use logicnet::sim::{exhaustive_equivalence, Equivalence};
use logicnet::{GateOp, Network, Signal};
use proptest::prelude::*;
use robdd::prelude::*;
use synthkit::aig::Aig;
use synthkit::cells::CellLibrary;
use synthkit::mapper::{map_with, MapStyle};
use synthkit::rewrite::DiagramRewrite;

#[derive(Debug, Clone)]
struct Plan {
    n_inputs: usize,
    gates: Vec<(u8, [u8; 3])>,
    outputs: Vec<u8>,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (2usize..6, 1usize..20).prop_flat_map(|(n_inputs, n_gates)| {
        (
            proptest::collection::vec((0u8..10, any::<[u8; 3]>()), n_gates),
            proptest::collection::vec(any::<u8>(), 1..5),
        )
            .prop_map(move |(gates, outputs)| Plan {
                n_inputs,
                gates,
                outputs,
            })
    })
}

fn realize(plan: &Plan) -> Network {
    let mut net = Network::new("random");
    let mut sigs: Vec<Signal> = (0..plan.n_inputs)
        .map(|i| net.add_input(&format!("i{i}")))
        .collect();
    for (opcode, picks) in &plan.gates {
        let op = match opcode % 10 {
            0 => GateOp::And,
            1 => GateOp::Or,
            2 => GateOp::Nand,
            3 => GateOp::Nor,
            4 => GateOp::Xor,
            5 => GateOp::Xnor,
            6 => GateOp::Not,
            7 => GateOp::Buf,
            8 => GateOp::Maj,
            _ => GateOp::Mux,
        };
        let pick = |k: u8| sigs[k as usize % sigs.len()];
        let inputs: Vec<Signal> = match op {
            GateOp::Not | GateOp::Buf => vec![pick(picks[0])],
            GateOp::Maj | GateOp::Mux => vec![pick(picks[0]), pick(picks[1]), pick(picks[2])],
            _ => vec![pick(picks[0]), pick(picks[1])],
        };
        sigs.push(net.add_gate(op, &inputs));
    }
    for (k, pick) in plan.outputs.iter().enumerate() {
        net.set_output(&format!("o{k}"), sigs[*pick as usize % sigs.len()]);
    }
    net
}

fn input_names(net: &Network) -> Vec<String> {
    net.inputs()
        .iter()
        .map(|&s| net.signal_name(s).to_string())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dag_aware_mapping_preserves_function(plan in arb_plan()) {
        let net = realize(&plan);
        let lib = CellLibrary::paper_22nm();
        let aig = Aig::from_network(&net);
        let mapped = map_with(&aig, &lib, MapStyle::DagAware);
        let back = mapped.to_network(&lib, &input_names(&net));
        prop_assert_eq!(exhaustive_equivalence(&net, &back), Equivalence::Indistinguishable);
    }

    #[test]
    fn tree_local_mapping_preserves_function(plan in arb_plan()) {
        // Note: neither style dominates the other in area — both covers
        // come from a heuristic (leaf-double-counting) DP, and restricting
        // cuts to trees occasionally steers the greedy choice to a
        // globally better cover. Correctness is the invariant; cost is
        // only sanity-bounded.
        let net = realize(&plan);
        let lib = CellLibrary::paper_22nm();
        let aig = Aig::from_network(&net);
        let dag = map_with(&aig, &lib, MapStyle::DagAware);
        let tree = map_with(&aig, &lib, MapStyle::TreeLocal);
        let back = tree.to_network(&lib, &input_names(&net));
        prop_assert_eq!(exhaustive_equivalence(&net, &back), Equivalence::Indistinguishable);
        prop_assert!(tree.area_um2 <= 4.0 * dag.area_um2 + 1.0,
            "tree-local cost wildly off: {} vs {}", tree.area_um2, dag.area_um2);
    }

    #[test]
    fn bbdd_rewrite_roundtrip_preserves_function(plan in arb_plan()) {
        let net = realize(&plan);
        let mgr = BbddManager::with_vars(net.num_inputs());
        let roots = build_network(&mgr, &net);
        let out_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        let rewritten = mgr.dump_network(&roots, &input_names(&net), &out_names);
        prop_assert_eq!(
            exhaustive_equivalence(&net, &rewritten),
            Equivalence::Indistinguishable
        );
    }

    #[test]
    fn robdd_rewrite_roundtrip_preserves_function(plan in arb_plan()) {
        let net = realize(&plan);
        let mgr = RobddManager::with_vars(net.num_inputs());
        let roots = build_network(&mgr, &net);
        let out_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        let rewritten = mgr.dump_network(&roots, &input_names(&net), &out_names);
        prop_assert_eq!(
            exhaustive_equivalence(&net, &rewritten),
            Equivalence::Indistinguishable
        );
    }

    #[test]
    fn bbdd_rewrite_after_sift_preserves_function(plan in arb_plan()) {
        let net = realize(&plan);
        let mgr = BbddManager::with_vars(net.num_inputs());
        let roots = build_network(&mgr, &net);
        mgr.reorder();
        let out_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        let rewritten = mgr.dump_network(&roots, &input_names(&net), &out_names);
        prop_assert_eq!(
            exhaustive_equivalence(&net, &rewritten),
            Equivalence::Indistinguishable
        );
    }
}

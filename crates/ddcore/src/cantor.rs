//! Cantor-pairing hash functions (paper §IV-A3, Eq. 4).
//!
//! The core hashing function for all BBDD tables is the Cantor pairing
//! function between two integers,
//!
//! ```text
//! C(i, j) = ½ · (i + j) · (i + j + 1) + i
//! ```
//!
//! a bijection `ℕ₀ × ℕ₀ → ℕ₀` (a *perfect* hash on unbounded integers).
//! To fit machine tables, the paper applies a first modulo with a large
//! prime `m` (e.g. `m = 15485863`) "for statistical reasons", then a final
//! modulo with the current table size. Wider tuples are hashed by *nesting*
//! pairings. When collision statistics degrade, the paper re-arranges the
//! nesting order and re-sizes the prime — [`HashArrangement`] captures those
//! degrees of freedom.

/// The large prime used by the paper for the first modulo reduction.
pub const DEFAULT_PRIME: u64 = 15_485_863;

/// Alternative primes cycled through when the hash function is re-arranged
/// (the paper's "re-sizing of the prime number m").
pub const PRIME_POOL: [u64; 4] = [15_485_863, 32_452_843, 49_979_687, 67_867_967];

/// The Cantor pairing of two integers, exact in 128-bit arithmetic.
///
/// # Panics
/// Panics (in debug builds) on overflow when `i + j >= 2^64 - 1`; callers
/// hashing arbitrary 64-bit words should pre-reduce operands (as
/// [`CantorHasher`] does with its prime).
///
/// ```
/// use ddcore::cantor_pair;
/// assert_eq!(cantor_pair(0, 0), 0);
/// assert_eq!(cantor_pair(1, 0), 2);
/// assert_eq!(cantor_pair(0, 1), 1);
/// assert_eq!(cantor_pair(2, 3), 17);
/// ```
#[inline]
pub fn cantor_pair(i: u64, j: u64) -> u128 {
    let s = i as u128 + j as u128;
    s * (s + 1) / 2 + i as u128
}

/// Inverse of [`cantor_pair`] (used in tests to demonstrate bijectivity).
#[inline]
pub fn cantor_unpair(z: u128) -> (u64, u64) {
    // w = floor((sqrt(8z+1) - 1) / 2)
    let w = {
        let mut w = (((8.0 * z as f64 + 1.0).sqrt() - 1.0) / 2.0) as u128;
        // float rounding can be off by one either way; correct exactly
        while (w + 1) * (w + 2) / 2 <= z {
            w += 1;
        }
        while w * (w + 1) / 2 > z {
            w -= 1;
        }
        w
    };
    let t = w * (w + 1) / 2;
    let i = z - t;
    let j = w - i;
    (i as u64, j as u64)
}

/// Order in which a tuple's elements are folded through nested Cantor
/// pairings. Swapping the order "re-arranges the elements in the table"
/// (paper §IV-A3) without changing correctness, because the table always
/// compares full keys on lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HashArrangement {
    /// `C(C(a, b), c)` — left-nested, the default.
    #[default]
    LeftNested,
    /// `C(a, C(b, c))` — right-nested alternative.
    RightNested,
    /// `C(C(b, a), c)` — first pair swapped.
    SwappedPair,
}

impl HashArrangement {
    /// The next arrangement in the rotation used when the table adapts.
    #[must_use]
    pub fn next(self) -> Self {
        match self {
            Self::LeftNested => Self::RightNested,
            Self::RightNested => Self::SwappedPair,
            Self::SwappedPair => Self::LeftNested,
        }
    }
}

/// A configurable nested-Cantor hasher for up to four-element tuples.
///
/// The hasher owns the prime `m` and the nesting [`HashArrangement`]; both
/// can be rotated at run time by the adaptive unique table.
#[derive(Debug, Clone, Copy)]
pub struct CantorHasher {
    prime: u64,
    prime_idx: usize,
    arrangement: HashArrangement,
}

impl Default for CantorHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl CantorHasher {
    /// A hasher with the paper's default prime and left-nested pairing.
    #[must_use]
    pub fn new() -> Self {
        Self {
            prime: DEFAULT_PRIME,
            prime_idx: 0,
            arrangement: HashArrangement::LeftNested,
        }
    }

    /// Currently selected prime `m`.
    #[must_use]
    pub fn prime(&self) -> u64 {
        self.prime
    }

    /// Currently selected nesting arrangement.
    #[must_use]
    pub fn arrangement(&self) -> HashArrangement {
        self.arrangement
    }

    /// Rotate to the next (arrangement, prime) combination. Returns the new
    /// configuration for logging.
    pub fn rearrange(&mut self) -> (HashArrangement, u64) {
        self.arrangement = self.arrangement.next();
        if self.arrangement == HashArrangement::LeftNested {
            self.prime_idx = (self.prime_idx + 1) % PRIME_POOL.len();
            self.prime = PRIME_POOL[self.prime_idx];
        }
        (self.arrangement, self.prime)
    }

    /// Pairing of two *pre-reduced* operands, entirely in 64-bit
    /// arithmetic: every prime in [`PRIME_POOL`] is below 2^27, so
    /// `s = a + b < 2^28` and `s(s+1)/2 + a < 2^56` — no overflow, and the
    /// final modulo is one hardware division instead of the 128-bit
    /// software `__umodti3` the naive formulation costs on the hot path.
    /// Produces bit-identical values to `cantor_pair(a, b) % m`.
    #[inline]
    fn pair_reduced(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.prime && b < self.prime);
        let s = a + b;
        (s * (s + 1) / 2 + a) % self.prime
    }

    /// Pre-reduce an arbitrary 64-bit operand below the prime so that the
    /// nested pairings stay in the 64-bit fast path. Mixing in the upper
    /// half keeps wide operands distinguishable after the modulo.
    #[inline]
    fn pre(&self, a: u64) -> u64 {
        if a < self.prime {
            a
        } else {
            ((a % self.prime) ^ (a >> 32)) % self.prime
        }
    }

    /// Hash a pair.
    #[inline]
    pub fn hash2(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (self.pre(a), self.pre(b));
        match self.arrangement {
            HashArrangement::SwappedPair => self.pair_reduced(b, a),
            _ => self.pair_reduced(a, b),
        }
    }

    /// Hash a triple by nesting two pairings according to the arrangement.
    #[inline]
    pub fn hash3(&self, a: u64, b: u64, c: u64) -> u64 {
        let (a, b, c) = (self.pre(a), self.pre(b), self.pre(c));
        match self.arrangement {
            HashArrangement::LeftNested => {
                let inner = self.pair_reduced(a, b);
                self.pair_reduced(inner, c)
            }
            HashArrangement::RightNested => {
                let inner = self.pair_reduced(b, c);
                self.pair_reduced(a, inner)
            }
            HashArrangement::SwappedPair => {
                let inner = self.pair_reduced(b, a);
                self.pair_reduced(inner, c)
            }
        }
    }

    /// Hash a quadruple by nesting three pairings.
    #[inline]
    pub fn hash4(&self, a: u64, b: u64, c: u64, d: u64) -> u64 {
        let abc = self.hash3(a, b, c);
        self.pair_reduced(abc, self.pre(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_matches_closed_form_small_values() {
        // First few diagonals of the Cantor enumeration.
        let expected: [((u64, u64), u128); 10] = [
            ((0, 0), 0),
            ((0, 1), 1),
            ((1, 0), 2),
            ((0, 2), 3),
            ((1, 1), 4),
            ((2, 0), 5),
            ((0, 3), 6),
            ((1, 2), 7),
            ((2, 1), 8),
            ((3, 0), 9),
        ];
        for ((i, j), z) in expected {
            assert_eq!(cantor_pair(i, j), z, "C({i},{j})");
        }
    }

    #[test]
    fn pairing_is_injective_on_grid() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            for j in 0..64u64 {
                assert!(seen.insert(cantor_pair(i, j)), "collision at ({i},{j})");
            }
        }
    }

    #[test]
    fn unpair_inverts_pair() {
        for i in (0..5000u64).step_by(97) {
            for j in (0..5000u64).step_by(89) {
                assert_eq!(cantor_unpair(cantor_pair(i, j)), (i, j));
            }
        }
    }

    #[test]
    fn paper_example_prime_is_default() {
        assert_eq!(DEFAULT_PRIME, 15485863);
        assert_eq!(CantorHasher::new().prime(), DEFAULT_PRIME);
    }

    #[test]
    fn rearrange_cycles_arrangements_and_primes() {
        let mut h = CantorHasher::new();
        let a0 = h.arrangement();
        let p0 = h.prime();
        h.rearrange();
        assert_ne!(h.arrangement(), a0);
        assert_eq!(
            h.prime(),
            p0,
            "prime only rotates on full arrangement cycle"
        );
        h.rearrange();
        h.rearrange();
        assert_eq!(h.arrangement(), HashArrangement::LeftNested);
        assert_ne!(h.prime(), p0);
    }

    #[test]
    fn arrangements_give_distinct_hashes() {
        let mut h = CantorHasher::new();
        let x0 = h.hash3(12, 34, 56);
        h.rearrange();
        let x1 = h.hash3(12, 34, 56);
        assert_ne!(x0, x1);
    }

    #[test]
    fn hash_no_overflow_on_large_inputs() {
        let h = CantorHasher::new();
        // Must not panic / wrap incorrectly near u64::MAX.
        let v = h.hash4(u64::MAX, u64::MAX - 1, u64::MAX / 2, 3);
        assert!(v < DEFAULT_PRIME);
    }
}

//! The external-root registry behind the managers' owned function handles.
//!
//! A decision-diagram package whose GC and reordering entry points take a
//! caller-maintained `roots: &[Edge]` list invites exactly one bug, over
//! and over: a caller forgets one live function, a collection runs, and a
//! perfectly good node is reclaimed out from under an edge somebody still
//! holds. Production packages (CUDD, HermesBDD) solve this structurally:
//! functions are handed out as *reference-counted handles*, and the
//! collector discovers its own roots from the handle registry.
//!
//! [`RootSet`] is that registry: a slab of refcounted slots, each holding
//! the packed bits of one externally-held edge. The managers own one
//! `RootSet` each and clone it into every handle they hand out
//! (`bbdd::BbddFn` / `robdd::RobddFn`); handle `Clone` bumps the slot's
//! refcount, handle `Drop` releases it. `gc()`/`sift()` trace from a
//! [`RootSet::snapshot`] instead of a caller-supplied list.
//!
//! ## Locking & reentrancy rule
//!
//! The slab sits behind one `Mutex` shared by the manager and all handles.
//! The lock is held only for O(1) slot updates and for the O(live-slots)
//! snapshot copy — **never across a mark/sweep**. A handle dropped while a
//! GC is tracing therefore cannot deadlock; at worst its nodes survive
//! until the next collection (the snapshot is a conservative
//! over-approximation of liveness, which is always safe). All registry
//! operations recover from mutex poisoning (`Drop` must never panic), and
//! every slot update is trivially panic-free, so a poisoned registry lock
//! cannot leave the slab inconsistent.

use std::sync::{Arc, Mutex, PoisonError};

/// The automatic-GC latch shared by both managers: growth points *arm* a
/// pending flag when the live count crosses the trigger; the collection
/// itself runs at a handle boundary (never mid-operation, where raw edges
/// the registry knows nothing about are in flight). After a collection
/// the trigger re-arms at twice the surviving size, never below the
/// configured threshold, so steady-state traffic is not GC-bound.
#[derive(Debug, Default)]
pub struct GcLatch {
    /// Live-node threshold arming the latch (0 = disabled).
    threshold: usize,
    /// Next live-node count at which the latch arms.
    arm: usize,
    /// Latched "collect at the next handle boundary" flag.
    pending: bool,
    /// Collections run through any path, monotonic — lets wrappers with
    /// their own id-keyed caches (the Par front-ends) detect that node
    /// ids may have been recycled since they last looked.
    generation: u64,
    /// Latch firings handed out by [`GcLatch::take_pending`], monotonic.
    fired: u64,
}

impl GcLatch {
    /// Set the arming threshold (`0` disables and clears any pending
    /// latch).
    pub fn set_threshold(&mut self, threshold: usize) {
        self.threshold = threshold;
        self.arm = threshold;
        if threshold == 0 {
            self.pending = false;
        }
    }

    /// The configured threshold (`0` = disabled).
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Called at node-creation growth points with the current live count.
    #[inline]
    pub fn note_growth(&mut self, live: usize) {
        if self.threshold > 0 && live >= self.arm {
            self.pending = true;
        }
    }

    /// Take the pending flag; the caller must collect iff `true`, then
    /// call [`GcLatch::rearm`] with the post-collection live count.
    #[must_use]
    pub fn take_pending(&mut self) -> bool {
        let fired = std::mem::take(&mut self.pending);
        if fired {
            self.fired = self.fired.wrapping_add(1);
        }
        fired
    }

    /// Re-arm after a collection at `max(threshold, 2 × live)`.
    pub fn rearm(&mut self, live: usize) {
        self.arm = (live * 2).max(self.threshold);
    }

    /// Record that a collection ran (any path — latched or explicit).
    pub fn note_collection(&mut self) {
        self.generation = self.generation.wrapping_add(1);
    }

    /// Monotonic count of collections; node ids may be recycled whenever
    /// this changes.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Monotonic count of latch firings — how many times
    /// [`GcLatch::take_pending`] handed a pending trigger to the caller
    /// (the `gc.latch_firings` metric).
    #[must_use]
    pub fn firings(&self) -> u64 {
        self.fired
    }
}

/// The slab: parallel refcount/bits arrays plus a free list.
#[derive(Debug, Default)]
struct Slab {
    /// Reference count per slot; 0 marks a free slot.
    refs: Vec<u32>,
    /// Packed edge bits per slot (meaningful only while `refs > 0`).
    bits: Vec<u64>,
    /// Indices of free slots, reused LIFO.
    free: Vec<u32>,
    /// Cumulative registry traffic (the `roots.*` metrics): slots
    /// registered, refcount bumps, and reference drops.
    registered: u64,
    retained: u64,
    released: u64,
}

/// A shared registry of externally-held roots (see the module docs).
///
/// Cloning a `RootSet` clones the *handle to the registry*, not the
/// registry: all clones address the same slab.
///
/// ```
/// use ddcore::roots::RootSet;
/// let roots = RootSet::new();
/// let slot = roots.register(42);
/// roots.retain(slot);
/// assert_eq!(roots.snapshot(), vec![42]);
/// assert_eq!(roots.len(), 1);
/// roots.release(slot);
/// roots.release(slot); // refcount reaches 0: the slot is freed
/// assert!(roots.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RootSet {
    slab: Arc<Mutex<Slab>>,
}

impl RootSet {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        RootSet::default()
    }

    #[inline]
    fn lock(&self) -> std::sync::MutexGuard<'_, Slab> {
        // Slot updates cannot panic midway, so a poisoned slab is still
        // consistent; recover rather than cascade (Drop must not panic).
        self.slab.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register `bits` as a live root with refcount 1; returns the slot.
    #[must_use]
    pub fn register(&self, bits: u64) -> u32 {
        let mut s = self.lock();
        s.registered += 1;
        if let Some(slot) = s.free.pop() {
            s.refs[slot as usize] = 1;
            s.bits[slot as usize] = bits;
            slot
        } else {
            s.refs.push(1);
            s.bits.push(bits);
            u32::try_from(s.refs.len() - 1).expect("root slab exceeds u32 slots")
        }
    }

    /// Bump the refcount of a live slot (handle `Clone`).
    ///
    /// # Panics
    /// Panics if the slot is free (a refcounting bug in the caller).
    pub fn retain(&self, slot: u32) {
        let mut s = self.lock();
        assert!(s.refs[slot as usize] > 0, "retain of a free root slot");
        s.refs[slot as usize] += 1;
        s.retained += 1;
    }

    /// Drop one reference to a slot, freeing it when the count reaches 0
    /// (handle `Drop`). Never panics on a poisoned lock.
    pub fn release(&self, slot: u32) {
        let mut s = self.lock();
        let r = &mut s.refs[slot as usize];
        debug_assert!(*r > 0, "release of a free root slot");
        *r -= 1;
        if *r == 0 {
            s.free.push(slot);
        }
        s.released += 1;
    }

    /// Number of live (registered, not yet fully released) slots.
    #[must_use]
    pub fn len(&self) -> usize {
        let s = self.lock();
        s.refs.len() - s.free.len()
    }

    /// `true` when no external root is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append the bits of every live slot to `out` (the GC root snapshot).
    /// Duplicates are *not* removed — the mark phase handles them.
    pub fn snapshot_into(&self, out: &mut Vec<u64>) {
        let s = self.lock();
        for (i, &r) in s.refs.iter().enumerate() {
            if r > 0 {
                out.push(s.bits[i]);
            }
        }
    }

    /// The bits of every live slot (see [`RootSet::snapshot_into`]).
    #[must_use]
    pub fn snapshot(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        self.snapshot_into(&mut out);
        out
    }

    /// Cumulative registry traffic as `(registered, retained, released)`
    /// — slot creations, refcount bumps, and reference drops since the
    /// registry was created (the `roots.*` metrics section).
    #[must_use]
    pub fn traffic(&self) -> (u64, u64, u64) {
        let s = self.lock();
        (s.registered, s.retained, s.released)
    }

    /// Register `bits` and return an RAII guard releasing the slot on
    /// drop — the low-level pin behind the managers' `pin(edge)` methods
    /// (the owned-handle layer in `ddcore::api` adds manager access and
    /// refcounted cloning on top of the same slot mechanism).
    #[must_use]
    pub fn guard(&self, bits: u64) -> RootGuard {
        RootGuard {
            slot: self.register(bits),
            roots: self.clone(),
        }
    }

    /// Pin a whole edge set at once (a published function library entering
    /// a session overlay); one guard per edge, released independently.
    #[must_use]
    pub fn guard_many(&self, bits: impl IntoIterator<Item = u64>) -> Vec<RootGuard> {
        bits.into_iter().map(|b| self.guard(b)).collect()
    }
}

/// An RAII pin of one registered root slot (see [`RootSet::guard`]).
#[derive(Debug)]
pub struct RootGuard {
    slot: u32,
    roots: RootSet,
}

impl Drop for RootGuard {
    fn drop(&mut self) {
        self.roots.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_retain_release_lifecycle() {
        let r = RootSet::new();
        let a = r.register(10);
        let b = r.register(20);
        assert_eq!(r.len(), 2);
        r.retain(a);
        r.release(a);
        assert_eq!(r.len(), 2, "refcount 1 remains");
        let mut snap = r.snapshot();
        snap.sort_unstable();
        assert_eq!(snap, vec![10, 20]);
        r.release(a);
        assert_eq!(r.len(), 1);
        r.release(b);
        assert!(r.is_empty());
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn slots_are_reused_after_release() {
        let r = RootSet::new();
        let a = r.register(1);
        r.release(a);
        let b = r.register(2);
        assert_eq!(a, b, "freed slots are recycled");
        assert_eq!(r.snapshot(), vec![2]);
        r.release(b);
    }

    #[test]
    fn clones_share_the_slab() {
        let r = RootSet::new();
        let r2 = r.clone();
        let a = r.register(7);
        assert_eq!(r2.snapshot(), vec![7]);
        r2.release(a);
        assert!(r.is_empty());
    }

    #[test]
    fn concurrent_register_release_is_consistent() {
        let r = RootSet::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        let slot = r.register(t * 10_000 + i);
                        r.retain(slot);
                        r.release(slot);
                        r.release(slot);
                    }
                });
            }
        });
        assert!(r.is_empty(), "every slot fully released");
    }
}

//! The adaptive hash tables backing the *unique tables* of both
//! decision-diagram packages (paper §IV-A1, §IV-A3).
//!
//! Two implementations share one API and the paper's adaptive behaviour
//! (resize on load; rotate the Cantor-pairing nesting order and reduction
//! prime, then rehash, when collision statistics stay poor after a resize):
//!
//! * [`OpenTable`] — the default: an open-addressed linear-probing table
//!   split swiss-table-style into a dense control array of cached hashes
//!   and a parallel inline key/value array, so a probe sequence is one
//!   compact memory stream instead of a pointer chase. Deletion is
//!   *adaptive*: large tables backward-shift eagerly (no tombstones, probe
//!   sequences never grow stale); small L1-resident tables defer hole
//!   repair to a batched sweep, which keeps the per-swap GC sweeps that
//!   sifting issues cheap on tiny subtables.
//! * [`BucketTable`] — the seed implementation: per-bucket linked lists
//!   threaded through a side `entries` array. Kept for the
//!   `chained_tables` ablation feature and the `tables_ablation` bench.
//!
//! [`UniqueTable`] aliases the implementation selected by the feature flag;
//! the managers build against the alias.

use crate::cantor::CantorHasher;
use crate::stats::TableStats;

/// Sentinel for "no entry" in bucket chains and open-addressed slots.
pub const NIL: u32 = u32::MAX;

/// Keys stored in a unique table must expose Cantor-hashable content.
///
/// `Default` supplies the placeholder stored in empty open-addressed slots
/// (never read as a key); `Copy + Eq` are what probing needs.
pub trait TableKey: Copy + Eq + Default {
    /// Hash the key with the table's current hasher configuration.
    fn table_hash(&self, hasher: &CantorHasher) -> u64;
}

/// The unique-table implementation managers compile against: the
/// open-addressed [`OpenTable`] by default, the chained [`BucketTable`]
/// under the `chained_tables` feature (ablation baseline).
#[cfg(not(feature = "chained_tables"))]
pub type UniqueTable<K> = OpenTable<K>;

/// The unique-table implementation managers compile against (chained
/// variant selected).
#[cfg(feature = "chained_tables")]
pub type UniqueTable<K> = BucketTable<K>;

#[derive(Debug, Clone, Copy)]
struct Entry<K> {
    key: K,
    val: u32,
    next: u32,
}

/// A chained hash map `K -> u32` with Cantor-pairing hashing and adaptive
/// resize/rearrange behaviour.
///
/// ```
/// use ddcore::table::{BucketTable, TableKey};
/// use ddcore::cantor::CantorHasher;
///
/// #[derive(Clone, Copy, PartialEq, Eq, Default)]
/// struct Pair(u32, u32);
/// impl TableKey for Pair {
///     fn table_hash(&self, h: &CantorHasher) -> u64 {
///         h.hash2(self.0 as u64, self.1 as u64)
///     }
/// }
///
/// let mut t = BucketTable::new(4);
/// t.insert(Pair(1, 2), 42);
/// assert_eq!(t.get(&Pair(1, 2)), Some(42));
/// assert_eq!(t.get(&Pair(2, 1)), None);
/// ```
#[derive(Debug, Clone)]
pub struct BucketTable<K> {
    buckets: Vec<u32>,
    entries: Vec<Entry<K>>,
    free: u32,
    len: usize,
    hasher: CantorHasher,
    stats: TableStats,
    /// Rearrangement is only attempted when resizing alone did not help;
    /// this latch avoids thrashing.
    probes_since_adapt: u64,
    lookups_since_adapt: u64,
}

impl<K: TableKey> Default for BucketTable<K> {
    fn default() -> Self {
        Self::new(64)
    }
}

impl<K: TableKey> BucketTable<K> {
    /// Chain length (probes per lookup) above which the table adapts.
    const ADAPT_PROBE_THRESHOLD: f64 = 4.0;
    /// Minimum lookups in a window before adaptation decisions are made.
    const ADAPT_WINDOW: u64 = 4096;

    /// Create a table with at least `initial_buckets` buckets.
    #[must_use]
    pub fn new(initial_buckets: usize) -> Self {
        let n = initial_buckets.next_power_of_two().max(4);
        Self {
            buckets: vec![NIL; n],
            entries: Vec::new(),
            free: NIL,
            len: 0,
            hasher: CantorHasher::new(),
            stats: TableStats::default(),
            probes_since_adapt: 0,
            lookups_since_adapt: 0,
        }
    }

    /// Number of key/value pairs stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Access the collision/access statistics.
    #[must_use]
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// The hasher currently in use (exposed for diagnostics and benches).
    #[must_use]
    pub fn hasher(&self) -> &CantorHasher {
        &self.hasher
    }

    #[inline]
    fn bucket_of(&self, key: &K) -> usize {
        // First modulo with the big prime happens inside the hasher; the
        // final modulo resizes the result to the current table size.
        (key.table_hash(&self.hasher) % self.buckets.len() as u64) as usize
    }

    /// Look up `key`, returning the stored value if present.
    pub fn get(&mut self, key: &K) -> Option<u32> {
        let b = self.bucket_of(key);
        let mut cur = self.buckets[b];
        let mut probes = 1u64;
        self.stats.lookups += 1;
        self.lookups_since_adapt += 1;
        while cur != NIL {
            let e = &self.entries[cur as usize];
            if &e.key == key {
                self.stats.probes += probes;
                self.probes_since_adapt += probes;
                self.stats.hits += 1;
                return Some(e.val);
            }
            probes += 1;
            cur = e.next;
        }
        self.stats.probes += probes;
        self.probes_since_adapt += probes;
        None
    }

    /// Read-only lookup: no statistics, no adaptation. This is the probe
    /// the parallel managers use against a *frozen* base table shared
    /// across worker threads (`&self` access is safe to run concurrently).
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<u32> {
        let b = (key.table_hash(&self.hasher) % self.buckets.len() as u64) as usize;
        let mut cur = self.buckets[b];
        while cur != NIL {
            let e = &self.entries[cur as usize];
            if &e.key == key {
                return Some(e.val);
            }
            cur = e.next;
        }
        None
    }

    /// Combined lookup-or-insert: walks the chain once, calling `make`
    /// only on a miss. Equivalent to `get` followed by `insert`, but the
    /// key is hashed a single time — the shape of `make_node`'s hot path.
    pub fn get_or_insert_with(&mut self, key: K, make: impl FnOnce() -> u32) -> u32 {
        if self.len >= self.buckets.len() {
            self.grow();
        }
        let b = self.bucket_of(&key);
        let mut cur = self.buckets[b];
        let mut probes = 1u64;
        self.stats.lookups += 1;
        self.lookups_since_adapt += 1;
        while cur != NIL {
            let e = &self.entries[cur as usize];
            if e.key == key {
                self.stats.probes += probes;
                self.probes_since_adapt += probes;
                self.stats.hits += 1;
                return e.val;
            }
            probes += 1;
            cur = e.next;
        }
        self.stats.probes += probes;
        self.probes_since_adapt += probes;
        let val = make();
        let slot = if self.free != NIL {
            let s = self.free;
            self.free = self.entries[s as usize].next;
            s
        } else {
            self.entries.push(Entry {
                key,
                val,
                next: NIL,
            });
            (self.entries.len() - 1) as u32
        };
        let e = &mut self.entries[slot as usize];
        e.key = key;
        e.val = val;
        e.next = self.buckets[b];
        self.buckets[b] = slot;
        self.len += 1;
        self.maybe_adapt();
        val
    }

    /// Insert `key -> val`. The caller must ensure the key is not already
    /// present (unique-table discipline: always `get` first).
    pub fn insert(&mut self, key: K, val: u32) {
        if self.len >= self.buckets.len() {
            self.grow();
        }
        let b = self.bucket_of(&key);
        let slot = if self.free != NIL {
            let s = self.free;
            self.free = self.entries[s as usize].next;
            s
        } else {
            self.entries.push(Entry {
                key,
                val,
                next: NIL,
            });
            (self.entries.len() - 1) as u32
        };
        let e = &mut self.entries[slot as usize];
        e.key = key;
        e.val = val;
        e.next = self.buckets[b];
        self.buckets[b] = slot;
        self.len += 1;
        self.maybe_adapt();
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<u32> {
        let b = self.bucket_of(key);
        let mut cur = self.buckets[b];
        let mut prev = NIL;
        while cur != NIL {
            let (k, next) = {
                let e = &self.entries[cur as usize];
                (e.key, e.next)
            };
            if &k == key {
                if prev == NIL {
                    self.buckets[b] = next;
                } else {
                    self.entries[prev as usize].next = next;
                }
                let val = self.entries[cur as usize].val;
                self.entries[cur as usize].next = self.free;
                self.free = cur;
                self.len -= 1;
                return Some(val);
            }
            prev = cur;
            cur = next;
        }
        None
    }

    /// Keep only the entries for which `keep(key, value)` holds
    /// (garbage-collection sweep). Shrinks the bucket array when occupancy
    /// drops far below capacity, so repeated sweeps stay proportional to
    /// the live size rather than the high-water mark.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, u32) -> bool) {
        for b in 0..self.buckets.len() {
            let mut cur = self.buckets[b];
            let mut prev = NIL;
            while cur != NIL {
                let (k, v, next) = {
                    let e = &self.entries[cur as usize];
                    (e.key, e.val, e.next)
                };
                if keep(&k, v) {
                    prev = cur;
                } else {
                    if prev == NIL {
                        self.buckets[b] = next;
                    } else {
                        self.entries[prev as usize].next = next;
                    }
                    self.entries[cur as usize].next = self.free;
                    self.free = cur;
                    self.len -= 1;
                }
                cur = next;
            }
        }
        if self.buckets.len() > 64 && self.len * 4 < self.buckets.len() {
            let target = (self.len * 2).next_power_of_two().max(64);
            self.rebuild(target);
        }
    }

    /// Iterate over all `(key, value)` pairs (order unspecified).
    pub fn for_each(&self, mut f: impl FnMut(&K, u32)) {
        for b in 0..self.buckets.len() {
            let mut cur = self.buckets[b];
            while cur != NIL {
                let e = &self.entries[cur as usize];
                f(&e.key, e.val);
                cur = e.next;
            }
        }
    }

    /// Collect all stored values.
    #[must_use]
    pub fn values(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|_, v| out.push(v));
        out
    }

    /// Drop all entries, keeping allocation and hasher configuration.
    pub fn clear(&mut self) {
        self.buckets.fill(NIL);
        self.entries.clear();
        self.free = NIL;
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_size = (self.buckets.len() * 2).max(4);
        self.rebuild(new_size);
        self.stats.resizes += 1;
    }

    /// The adaptive step: if after the last resize the average chain length
    /// in the current window still exceeds the threshold, rotate the hash
    /// arrangement / prime and rehash (paper §IV-A3: "the hash-function is
    /// automatically modified to re-arrange the elements in the table").
    fn maybe_adapt(&mut self) {
        if self.lookups_since_adapt < Self::ADAPT_WINDOW {
            return;
        }
        let avg = self.probes_since_adapt as f64 / self.lookups_since_adapt as f64;
        self.probes_since_adapt = 0;
        self.lookups_since_adapt = 0;
        if avg > Self::ADAPT_PROBE_THRESHOLD && self.len <= self.buckets.len() {
            self.hasher.rearrange();
            self.rebuild(self.buckets.len());
            self.stats.rearrangements += 1;
        }
    }

    fn rebuild(&mut self, new_size: usize) {
        let mut buckets = vec![NIL; new_size];
        // Re-link every live entry into the new bucket array.
        let live: Vec<u32> = {
            let mut v = Vec::with_capacity(self.len);
            for b in &self.buckets {
                let mut cur = *b;
                while cur != NIL {
                    v.push(cur);
                    cur = self.entries[cur as usize].next;
                }
            }
            v
        };
        for slot in live {
            let key = self.entries[slot as usize].key;
            let b = (key.table_hash(&self.hasher) % new_size as u64) as usize;
            self.entries[slot as usize].next = buckets[b];
            buckets[b] = slot;
        }
        self.buckets = buckets;
    }
}

/// Marker bit keeping decorated hashes nonzero (`0` = empty slot in the
/// control array).
const HASH_TAG: u32 = 1 << 31;

/// Control value of a *deferred* deletion: probe sequences scan through it
/// (unlike an empty slot), inserts may reuse it, and a batched sweep
/// eventually compacts it away. Distinguishable from both empty (`0`) and
/// live slots (which carry [`HASH_TAG`]).
const TOMBSTONE: u32 = 1;

/// Is a control value a live (decorated-hash) entry?
#[inline]
fn ctrl_live(c: u32) -> bool {
    c & HASH_TAG != 0
}

/// An open-addressed linear-probing hash map `K -> u32` with Cantor-pairing
/// hashing and the same adaptive resize/rearrange behaviour as
/// [`BucketTable`].
///
/// Layout is split swiss-table-style into two parallel arrays:
///
/// * a dense **control array** of decorated 32-bit hashes (`0` = empty) —
///   the only memory a probe sequence touches until a hash matches, eight
///   or more slots per cache line;
/// * a **data array** of `(key, value)` pairs, read only to confirm a hash
///   match and written only on insert.
///
/// Misses therefore scan a compact stream (instead of chasing `entries`
/// pointers as the chained table does), and the hot `get`-then-`insert`
/// pattern of `make_node` stays within one or two cache lines per table
/// touch. Deletion adapts to the table's size: past
/// [`OpenTable::DEFER_REPAIR_MAX_CAP`] slots the displaced run following a
/// hole is backward-shifted immediately (tombstone-free, probe sequences
/// never grow stale); at or below it — where the control array is
/// L1-resident and repair work dominates the probes it saves — deletions
/// tombstone the slot, and hole repair is batched: the GC sweep compacts
/// all accumulated tombstones once they reach half of capacity, the
/// insert paths reuse and recycle them under load, and a drain backstop
/// bounds remove-only workloads.
///
/// ```
/// use ddcore::table::{OpenTable, TableKey};
/// use ddcore::cantor::CantorHasher;
///
/// #[derive(Clone, Copy, PartialEq, Eq, Default)]
/// struct Pair(u32, u32);
/// impl TableKey for Pair {
///     fn table_hash(&self, h: &CantorHasher) -> u64 {
///         h.hash2(self.0 as u64, self.1 as u64)
///     }
/// }
///
/// let mut t = OpenTable::new(4);
/// t.insert(Pair(1, 2), 42);
/// assert_eq!(t.get(&Pair(1, 2)), Some(42));
/// assert_eq!(t.get(&Pair(2, 1)), None);
/// ```
#[derive(Debug, Clone)]
pub struct OpenTable<K> {
    /// Decorated hash per slot; `0` marks the slot empty.
    ctrl: Vec<u32>,
    /// Key/value payload, parallel to `ctrl`; only meaningful where
    /// `ctrl != 0`.
    data: Vec<(K, u32)>,
    /// `ctrl.len() - 1`; capacity is always a power of two.
    mask: usize,
    len: usize,
    hasher: CantorHasher,
    stats: TableStats,
    probes_since_adapt: u64,
    lookups_since_adapt: u64,
    /// Reused survivor buffer for [`OpenTable::retain`] /
    /// [`OpenTable::grow`], so the per-swap GC sweeps issued by sifting
    /// allocate nothing in steady state.
    scratch: Vec<(u32, K, u32)>,
    /// Reused punched-hole index buffer for [`OpenTable::retain`]'s
    /// sparse-death fast path (same no-allocation rationale).
    holes: Vec<usize>,
    /// Deferred deletions currently marked [`TOMBSTONE`] in the control
    /// array (only ever non-zero while the table is small enough for the
    /// deferred-repair regime; see [`OpenTable::DEFER_REPAIR_MAX_CAP`]).
    tombstones: usize,
}

impl<K: TableKey> Default for OpenTable<K> {
    fn default() -> Self {
        Self::new(64)
    }
}

impl<K: TableKey> OpenTable<K> {
    /// Probe length (per lookup) above which the table adapts. Probes scan
    /// only the dense control array, so the threshold tolerates the longer
    /// runs a 75% load implies and triggers only on genuine clustering.
    const ADAPT_PROBE_THRESHOLD: f64 = 6.0;
    /// Minimum lookups in a window before adaptation decisions are made.
    const ADAPT_WINDOW: u64 = 4096;
    /// Control-array capacity (slots) at or below which deletions are
    /// *deferred*: the slot becomes a tombstone instead of triggering
    /// backward-shift / hole-repair work, and a batched sweep compacts the
    /// table once tombstones reach half of capacity. At 4096 slots the
    /// control array is 16 KiB — L1-resident — where probing through a few
    /// tombstones is nearly free while per-deletion repair measurably is
    /// not (the `sift robdd/misex1` regression root-caused in DESIGN.md).
    /// Larger tables keep the eager tombstone-free scheme, which wins once
    /// probe runs leave L1.
    pub const DEFER_REPAIR_MAX_CAP: usize = 4096;
    /// Tombstone fraction (1/`SWEEP_TOMBSTONE_DIV` of capacity) that
    /// triggers the batched compaction sweep — half of capacity; sweeping
    /// more often than the GC cadence was measured to cost more than the
    /// repairs it saves (see DESIGN.md).
    const SWEEP_TOMBSTONE_DIV: usize = 2;

    /// Create a table with room for at least `initial_capacity` entries
    /// before the first resize.
    #[must_use]
    pub fn new(initial_capacity: usize) -> Self {
        let n = (initial_capacity.max(4) * 4 / 3).next_power_of_two().max(8);
        Self {
            ctrl: vec![0; n],
            data: vec![(K::default(), NIL); n],
            mask: n - 1,
            len: 0,
            hasher: CantorHasher::new(),
            stats: TableStats::default(),
            probes_since_adapt: 0,
            lookups_since_adapt: 0,
            scratch: Vec::new(),
            holes: Vec::new(),
            tombstones: 0,
        }
    }

    /// Number of key/value pairs stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Access the collision/access statistics.
    #[must_use]
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// The hasher currently in use (exposed for diagnostics and benches).
    #[must_use]
    pub fn hasher(&self) -> &CantorHasher {
        &self.hasher
    }

    /// Decorate the (possibly 64-bit) Cantor hash into the nonzero 32-bit
    /// form cached in the control array. Cantor hashes are already
    /// `< m < 2^32`, so the fold is lossless for them.
    #[inline]
    fn fold(h: u64) -> u32 {
        ((h ^ (h >> 32)) as u32) | HASH_TAG
    }

    /// Home slot of a decorated hash: a Fibonacci multiply spreads the
    /// prime-bounded Cantor range over all power-of-two capacities (a bare
    /// modulo would leave slots beyond the prime permanently cold).
    #[inline]
    fn home(&self, h: u32) -> usize {
        (((h as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & self.mask
    }

    /// Look up `key`, returning the stored value if present.
    pub fn get(&mut self, key: &K) -> Option<u32> {
        let h = Self::fold(key.table_hash(&self.hasher));
        let mut i = self.home(h);
        let mut probes = 1u64;
        self.stats.lookups += 1;
        self.lookups_since_adapt += 1;
        loop {
            let c = self.ctrl[i];
            if c == 0 {
                break;
            }
            if c == h && self.data[i].0 == *key {
                self.stats.probes += probes;
                self.probes_since_adapt += probes;
                self.stats.hits += 1;
                return Some(self.data[i].1);
            }
            i = (i + 1) & self.mask;
            probes += 1;
        }
        self.stats.probes += probes;
        self.probes_since_adapt += probes;
        None
    }

    /// Read-only lookup: no statistics, no adaptation. This is the probe
    /// the parallel managers use against a *frozen* base table shared
    /// across worker threads (`&self` access is safe to run concurrently).
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<u32> {
        let h = Self::fold(key.table_hash(&self.hasher));
        let mut i = self.home(h);
        loop {
            let c = self.ctrl[i];
            if c == 0 {
                return None;
            }
            if c == h && self.data[i].0 == *key {
                return Some(self.data[i].1);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Combined lookup-or-insert: probes once, calling `make` only on a
    /// miss and placing its value at the first tombstone on the probe path
    /// (or the terminal empty slot). Equivalent to `get` followed by
    /// `insert`, but the key is hashed and the table probed a single time —
    /// the shape of `make_node`'s hot path.
    pub fn get_or_insert_with(&mut self, key: K, make: impl FnOnce() -> u32) -> u32 {
        // Growing up front keeps the terminal probe slot valid for the
        // insert; the wasted grow on a would-be hit is amortized away.
        self.maybe_grow();
        let h = Self::fold(key.table_hash(&self.hasher));
        let mut i = self.home(h);
        let mut probes = 1u64;
        let mut reuse: Option<usize> = None;
        self.stats.lookups += 1;
        self.lookups_since_adapt += 1;
        loop {
            let c = self.ctrl[i];
            if c == 0 {
                break;
            }
            if c == h && self.data[i].0 == key {
                self.stats.probes += probes;
                self.probes_since_adapt += probes;
                self.stats.hits += 1;
                return self.data[i].1;
            }
            if c == TOMBSTONE && reuse.is_none() {
                reuse = Some(i);
            }
            i = (i + 1) & self.mask;
            probes += 1;
        }
        self.stats.probes += probes;
        self.probes_since_adapt += probes;
        let val = make();
        let slot = reuse.unwrap_or(i);
        if self.ctrl[slot] == TOMBSTONE {
            self.tombstones -= 1;
        }
        self.ctrl[slot] = h;
        self.data[slot] = (key, val);
        self.len += 1;
        self.maybe_adapt();
        val
    }

    /// Insert `key -> val`. The caller must ensure the key is not already
    /// present (unique-table discipline: always `get` first).
    pub fn insert(&mut self, key: K, val: u32) {
        self.maybe_grow();
        let h = Self::fold(key.table_hash(&self.hasher));
        self.insert_raw(h, key, val);
        self.len += 1;
        self.maybe_adapt();
    }

    /// First-come-first-served placement of a pre-hashed entry (no growth,
    /// no counting): the first non-live slot on the probe path — a
    /// tombstone counts, which is what keeps remove+insert churn on a
    /// deferred-repair table from growing probe runs.
    #[inline]
    fn insert_raw(&mut self, h: u32, key: K, val: u32) {
        let mut i = self.home(h);
        while ctrl_live(self.ctrl[i]) {
            i = (i + 1) & self.mask;
        }
        if self.ctrl[i] == TOMBSTONE {
            self.tombstones -= 1;
        }
        self.ctrl[i] = h;
        self.data[i] = (key, val);
    }

    /// Remove `key`, returning its value if it was present.
    ///
    /// Deletion strategy is adaptive (the per-swap GC fix): on a small
    /// (L1-resident) table the slot is tombstoned and hole repair is
    /// deferred to a batched sweep; on a large table the displaced run is
    /// backward-shifted immediately, leaving no tombstone behind.
    pub fn remove(&mut self, key: &K) -> Option<u32> {
        let h = Self::fold(key.table_hash(&self.hasher));
        let mut i = self.home(h);
        loop {
            let c = self.ctrl[i];
            if c == 0 {
                return None;
            }
            if c == h && self.data[i].0 == *key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        let val = self.data[i].1;
        self.len -= 1;
        if self.defer_repair() {
            // Only the control word is written: the control array gates
            // every read of `data`, so the stale payload is never seen.
            self.ctrl[i] = TOMBSTONE;
            self.tombstones += 1;
            self.maybe_sweep_tombstones();
        } else {
            debug_assert_eq!(self.tombstones, 0, "large tables are tombstone-free");
            self.backward_shift(i);
        }
        Some(val)
    }

    /// Is the table in the deferred-repair (tombstoning) regime? Once any
    /// tombstone exists, stay in the regime until a rebuild clears it, so
    /// the eager paths never meet a tombstoned run.
    #[inline]
    fn defer_repair(&self) -> bool {
        self.ctrl.len() <= Self::DEFER_REPAIR_MAX_CAP || self.tombstones > 0
    }

    /// The batched sweep backing deferred deletion: once tombstones reach
    /// the [`Self::SWEEP_TOMBSTONE_DIV`] fraction of capacity, compact
    /// every live entry back to its FCFS position in one pass (cost
    /// amortized over the many deletions that paid nothing).
    fn maybe_sweep_tombstones(&mut self) {
        if self.tombstones * Self::SWEEP_TOMBSTONE_DIV >= self.ctrl.len() {
            self.sweep_tombstones_now();
        }
    }

    fn sweep_tombstones_now(&mut self) {
        // Anchor: a slot that is empty *before* the sweep. No entry's
        // probe run crosses a truly empty slot (runs contain only live and
        // tombstoned slots), so repairs in anchored cyclic order never
        // strand an already-repaired entry — the same argument as the
        // eager retain's pass 2. One exists because load is capped at 75%.
        let anchor = self
            .ctrl
            .iter()
            .position(|&c| c == 0)
            .expect("open table is never full");
        // Turn every tombstone into a genuine hole (early-exit scan).
        let mut remaining = self.tombstones;
        for c in self.ctrl.iter_mut() {
            if *c == TOMBSTONE {
                *c = 0;
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
        }
        self.tombstones = 0;
        // In-place FCFS repair: slide every displaced survivor back to the
        // first empty slot on its probe path.
        for k in 1..=self.ctrl.len() {
            let i = (anchor + k) & self.mask;
            let c = self.ctrl[i];
            if c == 0 {
                continue;
            }
            let mut j = self.home(c);
            while j != i && self.ctrl[j] != 0 {
                j = (j + 1) & self.mask;
            }
            if j != i {
                self.ctrl[j] = c;
                self.data[j] = self.data[i];
                self.ctrl[i] = 0;
            }
        }
        self.stats.batched_repairs += 1;
    }

    /// Growth gate for the insert paths: when tombstones are what pushes
    /// the load factor over the cap, compact them instead of doubling the
    /// capacity — a table bloated by deferred deletions would otherwise
    /// keep growing (and its sweeps keep lengthening) under remove/insert
    /// churn whose *live* population is stable.
    #[inline]
    fn maybe_grow(&mut self) {
        if (self.len + self.tombstones + 1) * 4 <= self.ctrl.len() * 3 {
            return;
        }
        if self.tombstones > 0 {
            self.sweep_tombstones_now();
        }
        if (self.len + 1) * 4 > self.ctrl.len() * 3 {
            self.grow();
        }
    }

    /// Close the hole at `i` by relocating every later entry of the
    /// contiguous run whose probe path crosses the hole (Knuth's
    /// tombstone-free deletion for linear probing). The scan must continue
    /// past entries that sit at their home: an entry further down the run
    /// may still hash before the hole.
    fn backward_shift(&mut self, mut i: usize) {
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let c = self.ctrl[j];
            if c == 0 {
                break;
            }
            // Move `j`'s entry into the hole iff its home is cyclically
            // outside (i, j] — i.e. its probe path reaches `j` only
            // through `i`.
            let hole_dist = j.wrapping_sub(i) & self.mask;
            let displacement = j.wrapping_sub(self.home(c)) & self.mask;
            if displacement >= hole_dist {
                self.ctrl[i] = c;
                self.data[i] = self.data[j];
                i = j;
            }
        }
        self.ctrl[i] = 0;
        self.data[i] = (K::default(), NIL);
    }

    /// Keep only the entries for which `keep(key, value)` holds
    /// (garbage-collection sweep), in place and judging each entry exactly
    /// once: pass 1 punches holes, pass 2 restores probe-path reachability
    /// by sliding displaced survivors back toward their homes — no
    /// copying, no rehashing, and a sweep that removes nothing writes
    /// nothing. Shrinks the table when occupancy has dropped far below
    /// capacity.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, u32) -> bool) {
        // Per-swap GC sweeps visit every subtable; empty ones (common
        // while a variable sifts through foreign levels) must cost nothing
        // rather than a full control-array scan.
        if self.len == 0 {
            return;
        }
        // Deferred-repair regime (small, L1-resident tables): judge each
        // entry once, tombstone the dead, and skip hole repair entirely —
        // the batched sweep pays it back later. This is the adaptive
        // per-swap GC path: sifting's sweeps on tiny subtables now cost
        // one bounded scan and no repair work.
        if self.defer_repair() {
            let mut judged = 0usize;
            let mut dead = 0usize;
            let live = self.len;
            for (c, kv) in self.ctrl.iter_mut().zip(self.data.iter()) {
                if ctrl_live(*c) {
                    if !keep(&kv.0, kv.1) {
                        // Control-word write only; stale payloads are
                        // gated off by the control array.
                        *c = TOMBSTONE;
                        dead += 1;
                    }
                    judged += 1;
                    if judged == live {
                        break;
                    }
                }
            }
            if dead == 0 {
                return;
            }
            self.len -= dead;
            self.tombstones += dead;
            // Wider shrink hysteresis than the eager path: per-swap GC
            // moves whole levels back and forth, and a table that halves
            // the moment occupancy dips below 25% thrashes resize cycles
            // against the 75% grow threshold (measured on the misex1 sift:
            // 3x the chained table's resize count).
            let mut target = self.ctrl.len();
            while target > 16 && self.len * 8 < target {
                target /= 2;
            }
            if target < self.ctrl.len() {
                let mut survivors = std::mem::take(&mut self.scratch);
                survivors.clear();
                survivors.extend(
                    self.ctrl
                        .iter()
                        .zip(&self.data)
                        .filter(|(&c, _)| ctrl_live(c))
                        .map(|(&c, &(k, v))| (c, k, v)),
                );
                self.rebuild_into(target, &mut survivors);
                self.scratch = survivors;
            } else if self.tombstones * Self::SWEEP_TOMBSTONE_DIV >= self.ctrl.len() {
                // The GC is the batching point: one repair pass folds this
                // sweep's deaths together with every tombstone the
                // remove/insert churn deferred since the last sweep.
                self.sweep_tombstones_now();
            }
            return;
        }
        debug_assert_eq!(self.tombstones, 0, "large tables are tombstone-free");
        // The anchor must be a slot that is empty *before* any hole is
        // punched, so that no entry's original probe path wraps across it;
        // one always exists because load is capped at 75%.
        let anchor = self
            .ctrl
            .iter()
            .position(|&c| c == 0)
            .expect("open table is never full");
        // Pass 1: judge every entry exactly once, punching holes in place,
        // stopping as soon as all `len` live entries have been judged (the
        // control tail past the last entry is never touched). A sweep that
        // removes nothing (the common case between adjacent sifting swaps)
        // ends here, having written nothing.
        let mut holes = std::mem::take(&mut self.holes);
        holes.clear();
        let mut judged = 0usize;
        let live = self.len;
        for (i, (c, kv)) in self.ctrl.iter_mut().zip(&self.data).enumerate() {
            if *c != 0 {
                if !keep(&kv.0, kv.1) {
                    *c = 0;
                    holes.push(i);
                }
                judged += 1;
                if judged == live {
                    break;
                }
            }
        }
        let dead = holes.len();
        self.holes = holes;
        if dead == 0 {
            return;
        }
        self.len -= dead;
        let mut target = self.ctrl.len();
        while target > 16 && self.len * 8 < target {
            target /= 2;
        }
        if target < self.ctrl.len() {
            // Occupancy collapsed: shrink through the scratch buffer
            // (entries are already judged — this just compacts).
            let mut survivors = std::mem::take(&mut self.scratch);
            survivors.clear();
            survivors.extend(
                self.ctrl
                    .iter()
                    .zip(&self.data)
                    .filter(|(&c, _)| ctrl_live(c))
                    .map(|(&c, &(k, v))| (c, k, v)),
            );
            self.rebuild_into(target, &mut survivors);
            self.scratch = survivors;
            return;
        }
        if dead * 8 < self.ctrl.len() {
            // Sparse deaths (the per-swap GC sweeps issued by sifting kill
            // a handful of nodes at a time): run the pass-2 FCFS repair
            // *locally*, only over the cluster containing each hole —
            // O(dead × cluster length) instead of the O(capacity)
            // whole-table sweep below. A cluster is bounded by slots that
            // were empty before this sweep; pre-punch probe paths never
            // cross such a slot, so it is a valid local anchor, and
            // entries beyond the cluster's far boundary need no repair.
            // (Two holes sharing a cluster repair it twice; the second
            // sweep moves nothing.) Pass 1 records holes in ascending slot
            // order, so membership checks are binary searches — the guard
            // admits up to capacity/8 deaths, where a linear `contains`
            // per probed slot would dominate.
            let holes = std::mem::take(&mut self.holes);
            debug_assert!(holes.windows(2).all(|w| w[0] < w[1]));
            for &h in &holes {
                // Local anchor: nearest slot at or before `h` that is
                // empty and is not itself a punched hole. One exists: load
                // is capped at 75%, so at least capacity/4 slots are empty
                // while fewer than capacity/8 are punched holes.
                let mut a = h;
                loop {
                    a = a.wrapping_sub(1) & self.mask;
                    if self.ctrl[a] == 0 && holes.binary_search(&a).is_err() {
                        break;
                    }
                }
                // FCFS repair from the anchor to the cluster's far
                // boundary (the first empty slot that is not a punched
                // hole). Moves only vacate slots behind the frontier.
                let mut k = a;
                loop {
                    k = (k + 1) & self.mask;
                    let c = self.ctrl[k];
                    if c == 0 {
                        if holes.binary_search(&k).is_ok() {
                            continue;
                        }
                        break;
                    }
                    let mut j = self.home(c);
                    while j != k && self.ctrl[j] != 0 {
                        j = (j + 1) & self.mask;
                    }
                    if j != k {
                        self.ctrl[j] = c;
                        self.data[j] = self.data[k];
                        self.ctrl[k] = 0;
                        self.data[k] = (K::default(), NIL);
                    }
                }
            }
            self.holes = holes;
            self.holes.clear();
            return;
        }
        // Pass 2: repair reachability in place. Visiting slots in anchored
        // cyclic order, move each survivor back to the first empty slot on
        // its probe path (its FCFS position under current occupancy).
        // Because original probe paths never cross the anchor, any slot a
        // move vacates lies strictly after every already-repaired entry's
        // path, so repaired entries stay reachable.
        for k in 1..=self.ctrl.len() {
            let i = (anchor + k) & self.mask;
            let c = self.ctrl[i];
            if c == 0 {
                continue;
            }
            let mut j = self.home(c);
            while j != i && self.ctrl[j] != 0 {
                j = (j + 1) & self.mask;
            }
            if j != i {
                self.ctrl[j] = c;
                self.data[j] = self.data[i];
                self.ctrl[i] = 0;
            }
        }
    }

    /// Iterate over all `(key, value)` pairs (order unspecified).
    pub fn for_each(&self, mut f: impl FnMut(&K, u32)) {
        let mut seen = 0usize;
        for (c, kv) in self.ctrl.iter().zip(&self.data) {
            if ctrl_live(*c) {
                f(&kv.0, kv.1);
                seen += 1;
                if seen == self.len {
                    break;
                }
            }
        }
    }

    /// Collect all stored values.
    #[must_use]
    pub fn values(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|_, v| out.push(v));
        out
    }

    /// Drop all entries, keeping allocation and hasher configuration.
    pub fn clear(&mut self) {
        self.ctrl.fill(0);
        self.len = 0;
        self.tombstones = 0;
    }

    fn grow(&mut self) {
        let mut live = std::mem::take(&mut self.scratch);
        live.clear();
        live.extend(
            self.ctrl
                .iter()
                .zip(&self.data)
                .filter(|(&c, _)| ctrl_live(c))
                .map(|(&c, &(k, v))| (c, k, v)),
        );
        let target = self.ctrl.len() * 2;
        self.rebuild_into(target, &mut live);
        self.scratch = live;
        self.stats.resizes += 1;
    }

    /// The adaptive step shared with [`BucketTable`]: if the average probe
    /// length in the current window exceeds the threshold, rotate the hash
    /// arrangement / prime and rehash every key (paper §IV-A3).
    fn maybe_adapt(&mut self) {
        if self.lookups_since_adapt < Self::ADAPT_WINDOW {
            return;
        }
        let avg = self.probes_since_adapt as f64 / self.lookups_since_adapt as f64;
        self.probes_since_adapt = 0;
        self.lookups_since_adapt = 0;
        if avg > Self::ADAPT_PROBE_THRESHOLD {
            self.hasher.rearrange();
            let mut live = std::mem::take(&mut self.scratch);
            live.clear();
            live.extend(
                self.ctrl
                    .iter()
                    .zip(&self.data)
                    .filter(|(&c, _)| ctrl_live(c))
                    .map(|(&c, &(k, v))| (c, k, v)),
            );
            for e in &mut live {
                e.0 = Self::fold(e.1.table_hash(&self.hasher));
            }
            let target = self.ctrl.len();
            self.rebuild_into(target, &mut live);
            self.scratch = live;
            self.stats.rearrangements += 1;
        }
    }

    /// Reset the arrays to `capacity` empty slots and re-place the drained
    /// `entries` (decorated hashes assumed current). Reuses the existing
    /// allocations when the capacity is unchanged. Tombstones do not
    /// survive a rebuild.
    fn rebuild_into(&mut self, capacity: usize, entries: &mut Vec<(u32, K, u32)>) {
        let capacity = capacity.max(8).next_power_of_two();
        self.ctrl.clear();
        self.ctrl.resize(capacity, 0);
        self.tombstones = 0;
        // The control array gates every read of `data`, so stale payloads
        // are harmless: only the newly appended region needs initializing,
        // which keeps a growth step from memsetting the whole payload
        // array inside someone's timed hot path.
        self.data.resize(capacity, (K::default(), NIL));
        self.mask = capacity - 1;
        self.len = entries.len();
        for (h, k, v) in entries.drain(..) {
            self.insert_raw(h, k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
    struct K3(u32, u32, u32);
    impl TableKey for K3 {
        fn table_hash(&self, h: &CantorHasher) -> u64 {
            h.hash3(self.0 as u64, self.1 as u64, self.2 as u64)
        }
    }

    #[test]
    fn open_retain_sparse_deaths_keeps_survivors_reachable() {
        // Exercises retain's local-cluster repair path (dead ≪ capacity):
        // repeated sweeps each killing a small pseudo-random subset — the
        // per-swap GC shape — must leave every survivor reachable,
        // including entries whose probe runs contained several holes.
        let mut t: OpenTable<K3> = OpenTable::new(256);
        let mut live: std::collections::HashSet<u32> = (0..500u32).collect();
        for i in 0..500u32 {
            t.insert(K3(i, i.wrapping_mul(2654435761), i ^ 0xABCD), i);
        }
        let mut state = 0x5EEDu64;
        for round in 0..200 {
            // Kill ~1% per sweep so dead*8 < capacity holds.
            let mut killed: Vec<u32> = Vec::new();
            t.retain(|_, v| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(round as u64);
                if state >> 57 == 0 && killed.len() < 8 {
                    killed.push(v);
                    false
                } else {
                    true
                }
            });
            for v in killed {
                live.remove(&v);
            }
            assert_eq!(t.len(), live.len(), "round {round}");
            for &i in &live {
                assert_eq!(
                    t.get(&K3(i, i.wrapping_mul(2654435761), i ^ 0xABCD)),
                    Some(i),
                    "round {round}: survivor {i} lost"
                );
            }
        }
        assert!(
            !live.is_empty(),
            "the sweeps must not have killed everything"
        );
        assert!(live.len() < 500, "the sweeps must have killed something");
    }

    #[test]
    fn open_deferred_remove_tombstones_then_sweeps() {
        // A small (deferred-repair) table under remove/insert churn: every
        // removal must tombstone instead of repairing, contents must stay
        // exact, and sustained deletion pressure must trigger the batched
        // sweep.
        let mut t: OpenTable<K3> = OpenTable::new(64);
        assert!(t.ctrl.len() <= OpenTable::<K3>::DEFER_REPAIR_MAX_CAP);
        for i in 0..96u32 {
            t.insert(K3(i, i * 3, i ^ 1), i);
        }
        let mut live: std::collections::HashMap<u32, u32> = (0..96u32).map(|i| (i, i)).collect();
        let mut state = 0xC0FFEEu64;
        for round in 0..600u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (state >> 33) as u32 % 200;
            let k = K3(i, i * 3, i ^ 1);
            if live.remove(&i).is_some() {
                assert_eq!(t.remove(&k), Some(i), "round {round}");
            } else {
                assert_eq!(t.remove(&k), None, "round {round}");
                t.insert(k, i);
                live.insert(i, i);
            }
            assert_eq!(t.len(), live.len());
        }
        for (&i, &v) in &live {
            assert_eq!(t.get(&K3(i, i * 3, i ^ 1)), Some(v));
        }
        assert!(
            t.stats().batched_repairs > 0,
            "600 churn rounds must have triggered a batched sweep"
        );
    }

    #[test]
    fn open_deferred_retain_keeps_survivors_exact() {
        // The deferred-repair retain path (small table): repeated sweeps
        // punch tombstones without repair; every survivor stays reachable
        // and killed keys stay gone, across sweeps and re-inserts.
        let mut t: OpenTable<K3> = OpenTable::new(256);
        for i in 0..300u32 {
            t.insert(K3(i, 7, 9), i);
        }
        t.retain(|_, v| v % 3 != 0);
        let expect: Vec<u32> = (0..300).filter(|v| v % 3 != 0).collect();
        assert_eq!(t.len(), expect.len());
        for i in 0..300u32 {
            let want = (i % 3 != 0).then_some(i);
            assert_eq!(t.get(&K3(i, 7, 9)), want, "key {i}");
        }
        // Tombstoned slots must be reusable by both insert paths.
        for i in 1000..1100u32 {
            assert_eq!(t.get_or_insert_with(K3(i, 7, 9), || i), i);
        }
        t.retain(|_, v| v >= 1000);
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(&K3(1050, 7, 9)), Some(1050));
        assert_eq!(t.get(&K3(100, 7, 9)), None);
    }

    #[test]
    fn open_large_tables_stay_tombstone_free() {
        // Past the deferral cap, remove must backward-shift eagerly (the
        // eager regime's invariant is asserted in debug builds).
        let n = (OpenTable::<K3>::DEFER_REPAIR_MAX_CAP * 2) as u32;
        let mut t: OpenTable<K3> = OpenTable::new(n as usize);
        for i in 0..n {
            t.insert(K3(i, 1, 2), i);
        }
        assert!(t.ctrl.len() > OpenTable::<K3>::DEFER_REPAIR_MAX_CAP);
        for i in (0..n).step_by(3) {
            assert_eq!(t.remove(&K3(i, 1, 2)), Some(i));
        }
        assert_eq!(t.tombstones, 0);
        for i in 0..n {
            let want = (i % 3 != 0).then_some(i);
            assert_eq!(t.get(&K3(i, 1, 2)), want);
        }
    }

    #[test]
    fn peek_matches_get_on_both_tables() {
        let mut open: OpenTable<K3> = OpenTable::new(32);
        let mut chained: BucketTable<K3> = BucketTable::new(32);
        for i in 0..200u32 {
            open.insert(K3(i, 5, i), i + 7);
            chained.insert(K3(i, 5, i), i + 7);
        }
        open.remove(&K3(3, 5, 3));
        chained.remove(&K3(3, 5, 3));
        for i in 0..210u32 {
            let want = (i < 200 && i != 3).then_some(i + 7);
            assert_eq!(open.peek(&K3(i, 5, i)), want, "open {i}");
            assert_eq!(chained.peek(&K3(i, 5, i)), want, "chained {i}");
        }
        let lookups_before = open.stats().lookups;
        let _ = open.peek(&K3(0, 5, 0));
        assert_eq!(open.stats().lookups, lookups_before, "peek counts nothing");
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: BucketTable<K3> = BucketTable::new(4);
        for i in 0..1000u32 {
            t.insert(K3(i, i * 7, i ^ 3), i);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(t.get(&K3(i, i * 7, i ^ 3)), Some(i));
        }
        assert_eq!(t.get(&K3(5, 5, 5)), None);
        for i in (0..1000u32).step_by(2) {
            assert_eq!(t.remove(&K3(i, i * 7, i ^ 3)), Some(i));
        }
        assert_eq!(t.len(), 500);
        for i in 0..1000u32 {
            let expect = if i % 2 == 0 { None } else { Some(i) };
            assert_eq!(t.get(&K3(i, i * 7, i ^ 3)), expect);
        }
    }

    #[test]
    fn retain_sweeps_like_gc() {
        let mut t: BucketTable<K3> = BucketTable::new(4);
        for i in 0..256u32 {
            t.insert(K3(i, 0, 0), i);
        }
        t.retain(|_, v| v % 3 == 0);
        assert_eq!(t.len(), (0..256).filter(|v| v % 3 == 0).count());
        assert_eq!(t.get(&K3(3, 0, 0)), Some(3));
        assert_eq!(t.get(&K3(4, 0, 0)), None);
        // freed slots must be reusable
        for i in 1000..1100u32 {
            t.insert(K3(i, 1, 1), i);
        }
        assert_eq!(t.get(&K3(1050, 1, 1)), Some(1050));
    }

    #[test]
    fn grows_under_load() {
        let mut t: BucketTable<K3> = BucketTable::new(4);
        for i in 0..10_000u32 {
            t.insert(K3(i, i, i), i);
        }
        assert!(t.stats().resizes > 5);
        for i in 0..10_000u32 {
            assert_eq!(t.get(&K3(i, i, i)), Some(i));
        }
    }

    #[test]
    fn rearrangement_preserves_contents() {
        let mut t: BucketTable<K3> = BucketTable::new(4);
        for i in 0..512u32 {
            t.insert(K3(i, 1, 2), i);
        }
        // Force a rearrangement manually through the public path: hammer
        // lookups of missing keys to inflate the probe window, then insert.
        for _ in 0..2 {
            for i in 0..5000u32 {
                let _ = t.get(&K3(i + 100_000, 9, 9));
            }
            t.insert(K3(1_000_000 + t.len() as u32, 3, 4), 7);
        }
        for i in 0..512u32 {
            assert_eq!(t.get(&K3(i, 1, 2)), Some(i), "key {i} lost");
        }
    }

    #[test]
    fn clear_empties_table() {
        let mut t: BucketTable<K3> = BucketTable::new(4);
        for i in 0..100u32 {
            t.insert(K3(i, 2, 3), i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(&K3(1, 2, 3)), None);
        t.insert(K3(1, 2, 3), 9);
        assert_eq!(t.get(&K3(1, 2, 3)), Some(9));
    }

    #[test]
    fn values_and_for_each_enumerate_all() {
        let mut t: BucketTable<K3> = BucketTable::new(4);
        for i in 0..50u32 {
            t.insert(K3(i, 0, 1), i + 100);
        }
        let mut vals = t.values();
        vals.sort_unstable();
        assert_eq!(vals, (100..150).collect::<Vec<_>>());
    }
}

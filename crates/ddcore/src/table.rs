//! The adaptive chained hash table backing the *unique tables* of both
//! decision-diagram packages (paper §IV-A1, §IV-A3).
//!
//! Collisions are handled by per-bucket linked lists (the paper's choice for
//! the unique table). The table resizes when the load factor exceeds one and,
//! if the average chain length stays poor *after* resizing, it re-arranges
//! its hash function — rotating the Cantor-pairing nesting order and the
//! reduction prime — and rehashes in place. This reproduces the paper's
//! dynamic `{size × access-time}` adaptation.

use crate::cantor::CantorHasher;
use crate::stats::TableStats;

/// Sentinel for "no entry" in bucket chains.
pub const NIL: u32 = u32::MAX;

/// Keys stored in a [`BucketTable`] must expose Cantor-hashable content.
pub trait TableKey: Copy + Eq {
    /// Hash the key with the table's current hasher configuration.
    fn table_hash(&self, hasher: &CantorHasher) -> u64;
}

#[derive(Debug, Clone, Copy)]
struct Entry<K> {
    key: K,
    val: u32,
    next: u32,
}

/// A chained hash map `K -> u32` with Cantor-pairing hashing and adaptive
/// resize/rearrange behaviour.
///
/// ```
/// use ddcore::table::{BucketTable, TableKey};
/// use ddcore::cantor::CantorHasher;
///
/// #[derive(Clone, Copy, PartialEq, Eq)]
/// struct Pair(u32, u32);
/// impl TableKey for Pair {
///     fn table_hash(&self, h: &CantorHasher) -> u64 {
///         h.hash2(self.0 as u64, self.1 as u64)
///     }
/// }
///
/// let mut t = BucketTable::new(4);
/// t.insert(Pair(1, 2), 42);
/// assert_eq!(t.get(&Pair(1, 2)), Some(42));
/// assert_eq!(t.get(&Pair(2, 1)), None);
/// ```
#[derive(Debug, Clone)]
pub struct BucketTable<K> {
    buckets: Vec<u32>,
    entries: Vec<Entry<K>>,
    free: u32,
    len: usize,
    hasher: CantorHasher,
    stats: TableStats,
    /// Rearrangement is only attempted when resizing alone did not help;
    /// this latch avoids thrashing.
    probes_since_adapt: u64,
    lookups_since_adapt: u64,
}

impl<K: TableKey> Default for BucketTable<K> {
    fn default() -> Self {
        Self::new(64)
    }
}

impl<K: TableKey> BucketTable<K> {
    /// Chain length (probes per lookup) above which the table adapts.
    const ADAPT_PROBE_THRESHOLD: f64 = 4.0;
    /// Minimum lookups in a window before adaptation decisions are made.
    const ADAPT_WINDOW: u64 = 4096;

    /// Create a table with at least `initial_buckets` buckets.
    #[must_use]
    pub fn new(initial_buckets: usize) -> Self {
        let n = initial_buckets.next_power_of_two().max(4);
        Self {
            buckets: vec![NIL; n],
            entries: Vec::new(),
            free: NIL,
            len: 0,
            hasher: CantorHasher::new(),
            stats: TableStats::default(),
            probes_since_adapt: 0,
            lookups_since_adapt: 0,
        }
    }

    /// Number of key/value pairs stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Access the collision/access statistics.
    #[must_use]
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// The hasher currently in use (exposed for diagnostics and benches).
    #[must_use]
    pub fn hasher(&self) -> &CantorHasher {
        &self.hasher
    }

    #[inline]
    fn bucket_of(&self, key: &K) -> usize {
        // First modulo with the big prime happens inside the hasher; the
        // final modulo resizes the result to the current table size.
        (key.table_hash(&self.hasher) % self.buckets.len() as u64) as usize
    }

    /// Look up `key`, returning the stored value if present.
    pub fn get(&mut self, key: &K) -> Option<u32> {
        let b = self.bucket_of(key);
        let mut cur = self.buckets[b];
        let mut probes = 1u64;
        self.stats.lookups += 1;
        self.lookups_since_adapt += 1;
        while cur != NIL {
            let e = &self.entries[cur as usize];
            if &e.key == key {
                self.stats.probes += probes;
                self.probes_since_adapt += probes;
                self.stats.hits += 1;
                return Some(e.val);
            }
            probes += 1;
            cur = e.next;
        }
        self.stats.probes += probes;
        self.probes_since_adapt += probes;
        None
    }

    /// Insert `key -> val`. The caller must ensure the key is not already
    /// present (unique-table discipline: always `get` first).
    pub fn insert(&mut self, key: K, val: u32) {
        if self.len >= self.buckets.len() {
            self.grow();
        }
        let b = self.bucket_of(&key);
        let slot = if self.free != NIL {
            let s = self.free;
            self.free = self.entries[s as usize].next;
            s
        } else {
            self.entries.push(Entry {
                key,
                val,
                next: NIL,
            });
            (self.entries.len() - 1) as u32
        };
        let e = &mut self.entries[slot as usize];
        e.key = key;
        e.val = val;
        e.next = self.buckets[b];
        self.buckets[b] = slot;
        self.len += 1;
        self.maybe_adapt();
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<u32> {
        let b = self.bucket_of(key);
        let mut cur = self.buckets[b];
        let mut prev = NIL;
        while cur != NIL {
            let (k, next) = {
                let e = &self.entries[cur as usize];
                (e.key, e.next)
            };
            if &k == key {
                if prev == NIL {
                    self.buckets[b] = next;
                } else {
                    self.entries[prev as usize].next = next;
                }
                let val = self.entries[cur as usize].val;
                self.entries[cur as usize].next = self.free;
                self.free = cur;
                self.len -= 1;
                return Some(val);
            }
            prev = cur;
            cur = next;
        }
        None
    }

    /// Keep only the entries for which `keep(key, value)` holds
    /// (garbage-collection sweep). Shrinks the bucket array when occupancy
    /// drops far below capacity, so repeated sweeps stay proportional to
    /// the live size rather than the high-water mark.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, u32) -> bool) {
        for b in 0..self.buckets.len() {
            let mut cur = self.buckets[b];
            let mut prev = NIL;
            while cur != NIL {
                let (k, v, next) = {
                    let e = &self.entries[cur as usize];
                    (e.key, e.val, e.next)
                };
                if keep(&k, v) {
                    prev = cur;
                } else {
                    if prev == NIL {
                        self.buckets[b] = next;
                    } else {
                        self.entries[prev as usize].next = next;
                    }
                    self.entries[cur as usize].next = self.free;
                    self.free = cur;
                    self.len -= 1;
                }
                cur = next;
            }
        }
        if self.buckets.len() > 64 && self.len * 4 < self.buckets.len() {
            let target = (self.len * 2).next_power_of_two().max(64);
            self.rebuild(target);
        }
    }

    /// Iterate over all `(key, value)` pairs (order unspecified).
    pub fn for_each(&self, mut f: impl FnMut(&K, u32)) {
        for b in 0..self.buckets.len() {
            let mut cur = self.buckets[b];
            while cur != NIL {
                let e = &self.entries[cur as usize];
                f(&e.key, e.val);
                cur = e.next;
            }
        }
    }

    /// Collect all stored values.
    #[must_use]
    pub fn values(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|_, v| out.push(v));
        out
    }

    /// Drop all entries, keeping allocation and hasher configuration.
    pub fn clear(&mut self) {
        self.buckets.fill(NIL);
        self.entries.clear();
        self.free = NIL;
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_size = (self.buckets.len() * 2).max(4);
        self.rebuild(new_size);
        self.stats.resizes += 1;
    }

    /// The adaptive step: if after the last resize the average chain length
    /// in the current window still exceeds the threshold, rotate the hash
    /// arrangement / prime and rehash (paper §IV-A3: "the hash-function is
    /// automatically modified to re-arrange the elements in the table").
    fn maybe_adapt(&mut self) {
        if self.lookups_since_adapt < Self::ADAPT_WINDOW {
            return;
        }
        let avg = self.probes_since_adapt as f64 / self.lookups_since_adapt as f64;
        self.probes_since_adapt = 0;
        self.lookups_since_adapt = 0;
        if avg > Self::ADAPT_PROBE_THRESHOLD && self.len <= self.buckets.len() {
            self.hasher.rearrange();
            self.rebuild(self.buckets.len());
            self.stats.rearrangements += 1;
        }
    }

    fn rebuild(&mut self, new_size: usize) {
        let mut buckets = vec![NIL; new_size];
        // Re-link every live entry into the new bucket array.
        let live: Vec<u32> = {
            let mut v = Vec::with_capacity(self.len);
            for b in &self.buckets {
                let mut cur = *b;
                while cur != NIL {
                    v.push(cur);
                    cur = self.entries[cur as usize].next;
                }
            }
            v
        };
        for slot in live {
            let key = self.entries[slot as usize].key;
            let b = (key.table_hash(&self.hasher) % new_size as u64) as usize;
            self.entries[slot as usize].next = buckets[b];
            buckets[b] = slot;
        }
        self.buckets = buckets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct K3(u32, u32, u32);
    impl TableKey for K3 {
        fn table_hash(&self, h: &CantorHasher) -> u64 {
            h.hash3(self.0 as u64, self.1 as u64, self.2 as u64)
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: BucketTable<K3> = BucketTable::new(4);
        for i in 0..1000u32 {
            t.insert(K3(i, i * 7, i ^ 3), i);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(t.get(&K3(i, i * 7, i ^ 3)), Some(i));
        }
        assert_eq!(t.get(&K3(5, 5, 5)), None);
        for i in (0..1000u32).step_by(2) {
            assert_eq!(t.remove(&K3(i, i * 7, i ^ 3)), Some(i));
        }
        assert_eq!(t.len(), 500);
        for i in 0..1000u32 {
            let expect = if i % 2 == 0 { None } else { Some(i) };
            assert_eq!(t.get(&K3(i, i * 7, i ^ 3)), expect);
        }
    }

    #[test]
    fn retain_sweeps_like_gc() {
        let mut t: BucketTable<K3> = BucketTable::new(4);
        for i in 0..256u32 {
            t.insert(K3(i, 0, 0), i);
        }
        t.retain(|_, v| v % 3 == 0);
        assert_eq!(t.len(), (0..256).filter(|v| v % 3 == 0).count());
        assert_eq!(t.get(&K3(3, 0, 0)), Some(3));
        assert_eq!(t.get(&K3(4, 0, 0)), None);
        // freed slots must be reusable
        for i in 1000..1100u32 {
            t.insert(K3(i, 1, 1), i);
        }
        assert_eq!(t.get(&K3(1050, 1, 1)), Some(1050));
    }

    #[test]
    fn grows_under_load() {
        let mut t: BucketTable<K3> = BucketTable::new(4);
        for i in 0..10_000u32 {
            t.insert(K3(i, i, i), i);
        }
        assert!(t.stats().resizes > 5);
        for i in 0..10_000u32 {
            assert_eq!(t.get(&K3(i, i, i)), Some(i));
        }
    }

    #[test]
    fn rearrangement_preserves_contents() {
        let mut t: BucketTable<K3> = BucketTable::new(4);
        for i in 0..512u32 {
            t.insert(K3(i, 1, 2), i);
        }
        // Force a rearrangement manually through the public path: hammer
        // lookups of missing keys to inflate the probe window, then insert.
        for _ in 0..2 {
            for i in 0..5000u32 {
                let _ = t.get(&K3(i + 100_000, 9, 9));
            }
            t.insert(K3(1_000_000 + t.len() as u32, 3, 4), 7);
        }
        for i in 0..512u32 {
            assert_eq!(t.get(&K3(i, 1, 2)), Some(i), "key {i} lost");
        }
    }

    #[test]
    fn clear_empties_table() {
        let mut t: BucketTable<K3> = BucketTable::new(4);
        for i in 0..100u32 {
            t.insert(K3(i, 2, 3), i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(&K3(1, 2, 3)), None);
        t.insert(K3(1, 2, 3), 9);
        assert_eq!(t.get(&K3(1, 2, 3)), Some(9));
    }

    #[test]
    fn values_and_for_each_enumerate_all() {
        let mut t: BucketTable<K3> = BucketTable::new(4);
        for i in 0..50u32 {
            t.insert(K3(i, 0, 1), i + 100);
        }
        let mut vals = t.values();
        vals.sort_unstable();
        assert_eq!(vals, (100..150).collect::<Vec<_>>());
    }
}

//! Multi-core execution primitives: the sharded concurrent unique table,
//! the lossy lock-free computed cache, the append-only overlay arena and a
//! std-only fork-join helper.
//!
//! These are the building blocks of the parallel managers (`bbdd::ParBbdd`,
//! `robdd::ParRobdd`). The design follows HermesBDD's recipe — recursive
//! `apply` parallelizes naturally once node *uniqueness* is protected by a
//! concurrent table and the computed table is allowed to be *lossy* — with
//! one twist that keeps results bit-identical regardless of thread count:
//! the parallel phase works in a frozen-base + overlay space, and the final
//! diagram is committed to the owning sequential manager in a deterministic
//! order (see the managers' `par` modules for the commit protocol).
//!
//! Everything here is safe Rust on `std` only (`Mutex`, `OnceLock` and
//! atomics); the crate-level `#![forbid(unsafe_code)]` applies.
//!
//! ## Memory-ordering argument (lossy cache + overlay arena)
//!
//! Overlay node words are plain atomic stores with `Relaxed` ordering. A
//! thread can only learn an overlay node id through one of two channels,
//! both of which establish a happens-before edge covering the node's words:
//!
//! 1. the **sharded table** — the id is published by `get_or_insert_with`
//!    under a shard `Mutex`, and every reader obtains it under the same
//!    lock (lock release/acquire orders the preceding word writes);
//! 2. the **computed cache** — an entry's value is stored before its tag
//!    (`Release`), and a reader checks the tag first (`Acquire`).
//!
//! The cache itself is *lossy*: a reader that observes a torn tag/value
//! pair (two writers racing on one way) fails the tag verification and
//! treats the entry as a miss. Torn pairs are detectable because the value
//! word carries a 32-bit check derived from a second, independent
//! fingerprint of the key; the counters report them as `tear_misses`.

use crate::cantor::CantorHasher;
use crate::table::{OpenTable, TableKey};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

// ─────────────────────── shared manager-facing types ─────────────────────

/// Tuning knobs of a parallel manager (`bbdd::ParBbdd` / `robdd::ParRobdd`
/// re-export this; the defaults are sound for every workload, only
/// `threads` usually needs setting).
#[derive(Debug, Clone, Copy)]
pub struct ParConfig {
    /// Worker threads the fork-join phases may use (1 = run the same
    /// pipeline inline). Results never depend on this value.
    pub threads: usize,
    /// Combined operand node count below which an operation runs on the
    /// sequential manager directly. `0` forces the parallel pipeline even
    /// for trivial operands (useful for tests).
    pub cutoff: usize,
    /// Recursion levels to split before going parallel; `None` derives
    /// `log2(threads) + 3` (about 8 tasks per worker).
    pub split_depth: Option<u16>,
    /// Capacity (ways) of the lossy concurrent computed cache. Fixed for
    /// the manager's lifetime — atomic caches cannot grow in place.
    pub cache_ways: usize,
    /// Shard count of the concurrent unique table (rounded to a power of
    /// two).
    pub shards: usize,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            threads: 1,
            cutoff: 2048,
            split_depth: None,
            cache_ways: 1 << 20,
            shards: 64,
        }
    }
}

/// Execution counters of a parallel manager, surfaced next to the
/// sequential `BbddStats`/`RobddStats`.
#[derive(Debug, Clone, Default)]
pub struct ParStats {
    /// Operations that ran the parallel pipeline.
    pub ops_parallel: u64,
    /// Operations that fell back to the sequential manager (below the
    /// cutoff).
    pub ops_sequential: u64,
    /// Leaf subproblems executed across all parallel phases.
    pub tasks_executed: u64,
    /// Leaf subproblems executed by helper threads (work the submitting
    /// thread did not run itself).
    pub tasks_stolen: u64,
    /// Tasks executed per worker slot (index 0 = the submitting thread),
    /// accumulated across operations.
    pub tasks_by_worker: Vec<u64>,
    /// Recursive engine calls inside the parallel phases.
    pub par_recursions: u64,
    /// Overlay nodes committed into the base manager.
    pub nodes_imported: u64,
    /// Overlay nodes materialized (committed or scratch).
    pub overlay_nodes: u64,
    /// Sharded-table lock acquisitions that found the lock held
    /// (cumulative across all operations).
    pub shard_contention: u64,
    /// Per-shard occupancy at the end of the most recent parallel phase.
    pub last_shard_occupancy: Vec<usize>,
    /// Lossy concurrent cache counters (cumulative), including the
    /// tag-tear misses unique to the lock-free design.
    pub cache: AtomicCacheStats,
}

// ───────────────────────── sharded unique table ─────────────────────────

/// Occupancy / contention snapshot of one shard (see
/// [`ShardedTable::shard_stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Entries currently stored in the shard.
    pub len: usize,
    /// Lock acquisitions that found the shard lock already held.
    pub contended: u64,
}

/// Pad each shard to its own cache line so neighbouring shard locks do not
/// false-share.
#[repr(align(64))]
#[derive(Debug)]
struct Shard<K> {
    table: Mutex<OpenTable<K>>,
    /// `try_lock` failures (a direct proxy for lock contention).
    contended: AtomicU64,
}

/// A concurrent hash map `K -> u32` built from N power-of-two shards of the
/// sequential [`OpenTable`], each behind its own lock.
///
/// A key is routed to a shard by the top bits of its (Fibonacci-spread)
/// Cantor hash, so the per-shard tables see the same key distribution as
/// one big table would. `get_or_insert_with` holds exactly **one** shard
/// lock for the duration of the lookup (and of `make` on a miss), which is
/// the whole synchronization story: disjoint shards never contend.
///
/// The router hashes with a fixed [`CantorHasher`]; the shard-internal
/// tables keep their own adaptive hashers (a shard rearranging itself does
/// not move keys across shards).
///
/// ```
/// use ddcore::par::ShardedTable;
/// use ddcore::table::TableKey;
/// use ddcore::cantor::CantorHasher;
///
/// #[derive(Clone, Copy, PartialEq, Eq, Default)]
/// struct Pair(u32, u32);
/// impl TableKey for Pair {
///     fn table_hash(&self, h: &CantorHasher) -> u64 {
///         h.hash2(self.0 as u64, self.1 as u64)
///     }
/// }
///
/// let t: ShardedTable<Pair> = ShardedTable::new(8, 64);
/// assert_eq!(t.get_or_insert_with(Pair(1, 2), || 42), 42);
/// assert_eq!(t.get_or_insert_with(Pair(1, 2), || 99), 42); // first wins
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedTable<K> {
    shards: Box<[Shard<K>]>,
    /// `64 - log2(shard count)`; routing takes the top hash bits.
    shift: u32,
    router: CantorHasher,
}

impl<K: TableKey> ShardedTable<K> {
    /// Create a table with `shards` shards (rounded up to a power of two)
    /// of `per_shard_capacity` initial entries each.
    #[must_use]
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        let n = shards.next_power_of_two().max(1);
        ShardedTable {
            shards: (0..n)
                .map(|_| Shard {
                    table: Mutex::new(OpenTable::new(per_shard_capacity)),
                    contended: AtomicU64::new(0),
                })
                .collect(),
            shift: 64 - n.trailing_zeros(),
            router: CantorHasher::new(),
        }
    }

    /// Number of shards (always a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Route a raw Cantor hash to its shard: Fibonacci-spread the
    /// prime-bounded hash over the full 64-bit range, then keep the top
    /// `log2(shards)` bits.
    #[inline]
    fn shard_of(&self, h: u64) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
        }
    }

    /// Combined lookup-or-insert under exactly one shard lock. `make` runs
    /// inside the critical section on a miss (the unique-table discipline:
    /// at most one thread materializes a given key).
    ///
    /// # Panics
    /// Panics if the shard lock is poisoned — a *previous* worker panicked
    /// mid-insert and the shard may hold a half-finished entry, so lookups
    /// through it are no longer trustworthy. When the call runs inside
    /// [`fork_join`]/[`try_fork_join`], this panic is caught and surfaced
    /// as one clean [`TaskPanic`] at join time (not an opaque cross-thread
    /// abort); [`ShardedTable::clear`] afterwards heals the shard.
    pub fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> u32) -> u32 {
        let shard = &self.shards[self.shard_of(key.table_hash(&self.router))];
        let mut guard = match shard.table.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                match shard.table.lock() {
                    Ok(g) => g,
                    Err(_) => {
                        panic!("sharded unique table: shard poisoned by an earlier worker panic")
                    }
                }
            }
            Err(std::sync::TryLockError::Poisoned(_)) => {
                panic!("sharded unique table: shard poisoned by an earlier worker panic")
            }
        };
        guard.get_or_insert_with(key, make)
    }

    /// Total entries across all shards (locks each shard briefly).
    /// Poison-tolerant: a poisoned shard is still counted (its length field
    /// is valid even if a racing insert died half-way).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.table.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// `true` when no shard holds an entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries, keeping shard allocations and contention counters.
    ///
    /// This is also the recovery path after a worker panic: clearing resets
    /// each shard wholesale (any half-finished insert is discarded) and
    /// un-poisons its lock, so the table is usable again.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.table
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clear();
            s.table.clear_poison();
        }
    }

    /// Per-shard occupancy and contention counters (poison-tolerant, like
    /// [`ShardedTable::len`]).
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                len: s.table.lock().unwrap_or_else(PoisonError::into_inner).len(),
                contended: s.contended.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Iterate over all `(key, value)` pairs, shard by shard (order
    /// unspecified; each shard is locked for its portion of the walk).
    ///
    /// # Panics
    /// Panics if a shard lock is poisoned: a half-finished insert may be
    /// present, so enumerating its entries could yield a torn pair.
    pub fn for_each(&self, mut f: impl FnMut(&K, u32)) {
        for s in self.shards.iter() {
            s.table
                .lock()
                .expect("sharded unique table: shard poisoned by an earlier worker panic")
                .for_each(&mut f);
        }
    }
}

// ─────────────────────── lossy lock-free computed cache ──────────────────

/// Cumulative counters of an [`AtomicCache`] (all updated with relaxed
/// atomics; exact under a single thread, a faithful tally under many).
#[derive(Debug, Clone, Copy, Default)]
pub struct AtomicCacheStats {
    /// Lookup operations performed.
    pub lookups: u64,
    /// Lookups that found a live, tag-verified entry.
    pub hits: u64,
    /// Results recorded.
    pub inserts: u64,
    /// Lookups whose tag matched but whose value word failed the torn-write
    /// check (two writers raced on the way) — counted as misses.
    pub tear_misses: u64,
    /// Epoch bumps (whole-cache invalidations).
    pub invalidations: u64,
}

impl AtomicCacheStats {
    /// Lookups that missed (tear misses included — a torn read is a miss).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Lifetime hit rate.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// One cache way: a tag word and a value word, written value-first
/// (`Release` on the tag) and read tag-first (`Acquire`).
#[derive(Debug)]
struct Way {
    tag: AtomicU64,
    val: AtomicU64,
}

/// The lossy lock-free computed cache: 2-way set-associative over
/// tag/value [`AtomicU64`] pairs with tag-verified reads.
///
/// Keys are the same `(k1, k2, op-tag)` triples the sequential
/// [`ComputedCache`](crate::ComputedCache) uses (the op-tag registry of
/// [`crate::optag`] is shared), compressed into two independent 64-bit
/// fingerprints: one is the stored tag (bit 0 forced set, so `0` can mean
/// "empty"), the other contributes a 32-bit check folded into the value
/// word next to the 32-bit result. A reader accepts an entry only when the
/// tag matches *and* the value's check half matches — a torn tag/value
/// pair (two racing writers) fails verification and is simply a miss.
///
/// Invalidation is O(1): an epoch counter participates in both
/// fingerprints, so bumping it orphans every existing entry.
///
/// ```
/// use ddcore::par::AtomicCache;
/// let c = AtomicCache::new(1 << 10);
/// c.insert(1, 2, 3, 99);
/// assert_eq!(c.get(1, 2, 3), Some(99));
/// c.bump_epoch();
/// assert_eq!(c.get(1, 2, 3), None);
/// ```
#[derive(Debug)]
pub struct AtomicCache {
    /// `2 * sets` ways; set `s` owns ways `2s` and `2s + 1`.
    ways: Box<[Way]>,
    /// `sets - 1` (sets are a power of two).
    mask: u64,
    epoch: AtomicU64,
    lookups: AtomicU64,
    hits: AtomicU64,
    inserts: AtomicU64,
    tear_misses: AtomicU64,
    invalidations: AtomicU64,
}

/// SplitMix64-style finalizer: the standard full-avalanche 64-bit mix.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl AtomicCache {
    /// Create a cache with `slots` ways (rounded up to a power of two,
    /// minimum 32). The cache never grows: atomic caches cannot be resized
    /// without a global barrier, so size it for the workload up front.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        let n = slots.next_power_of_two().max(32);
        AtomicCache {
            ways: (0..n)
                .map(|_| Way {
                    tag: AtomicU64::new(0),
                    val: AtomicU64::new(0),
                })
                .collect(),
            mask: (n as u64 / 2) - 1,
            epoch: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            tear_misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Number of ways allocated.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ways.len()
    }

    /// The two independent fingerprints of a key under the current epoch.
    /// `fp1` (the stored tag) has bit 0 forced set so it is never 0.
    ///
    /// The op tag and the epoch are avalanched *separately* before being
    /// combined: both are small integers, and a raw `tag ^ epoch` would
    /// alias `(tag, epoch)` pairs across invalidations (e.g. tag 4 at
    /// epoch 8 against tag 12 at epoch 0), resurrecting stale entries.
    #[inline]
    fn fingerprints(&self, k1: u64, k2: u64, tag: u32) -> (u64, u64) {
        let epoch = self.epoch.load(Ordering::Relaxed);
        let salt =
            mix64(u64::from(tag) ^ 0xA076_1D64_78BD_642F) ^ mix64(epoch ^ 0xE703_7ED1_A0B4_28DB);
        let a = mix64(k1 ^ mix64(k2 ^ salt));
        let b = mix64(a ^ 0x9E37_79B9_7F4A_7C15);
        (a | 1, b)
    }

    /// Look up a previously computed 32-bit result.
    #[inline]
    pub fn get(&self, k1: u64, k2: u64, tag: u32) -> Option<u32> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let (fp1, fp2) = self.fingerprints(k1, k2, tag);
        let base = ((fp1 >> 1) & self.mask) as usize * 2;
        for way in &self.ways[base..base + 2] {
            if way.tag.load(Ordering::Acquire) == fp1 {
                let v = way.val.load(Ordering::Relaxed);
                if (v >> 32) as u32 == (fp2 >> 32) as u32 {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    crate::obs::cache_access(tag, true);
                    return Some(v as u32);
                }
                // Tag matched but the value belongs to another write: a
                // torn entry — by design, just a miss.
                self.tear_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        crate::obs::cache_access(tag, false);
        None
    }

    /// Record a computed 32-bit result. Prefers an empty way; otherwise
    /// overwrites the way picked by a fingerprint bit (lossy by contract —
    /// racing writers may tear an entry, which readers detect).
    #[inline]
    pub fn insert(&self, k1: u64, k2: u64, tag: u32, result: u32) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let (fp1, fp2) = self.fingerprints(k1, k2, tag);
        let base = ((fp1 >> 1) & self.mask) as usize * 2;
        let t0 = self.ways[base].tag.load(Ordering::Relaxed);
        let way = if t0 == fp1 || t0 == 0 {
            &self.ways[base]
        } else {
            let t1 = self.ways[base + 1].tag.load(Ordering::Relaxed);
            if t1 == fp1 || t1 == 0 {
                &self.ways[base + 1]
            } else {
                &self.ways[base + usize::from(fp1 & 2 != 0)]
            }
        };
        let v = (u64::from((fp2 >> 32) as u32) << 32) | u64::from(result);
        way.val.store(v, Ordering::Relaxed);
        way.tag.store(fp1, Ordering::Release);
    }

    /// Invalidate every entry in O(1) by bumping the epoch that both
    /// fingerprints incorporate.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative counters since creation.
    #[must_use]
    pub fn stats(&self) -> AtomicCacheStats {
        AtomicCacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            tear_misses: self.tear_misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

// ───────────────────────── overlay node arena ────────────────────────────

/// Nodes per segment (`2^16`): big enough to amortize segment faults, small
/// enough that a mostly-idle arena wastes little.
const SEG_BITS: u32 = 16;
const SEG_LEN: usize = 1 << SEG_BITS;
/// Segment-directory size: `2^14` segments × `2^16` nodes = 2^30 node ids,
/// the full id space packed edges can address.
const MAX_SEGS: usize = 1 << 14;

/// One overlay slot: three packed `u32` words, matching the managers' node
/// layout (two child-edge words plus a meta word).
#[derive(Debug, Default)]
struct OverlaySlot {
    a: AtomicU32,
    b: AtomicU32,
    c: AtomicU32,
}

/// An append-only concurrent arena of `(u32, u32, u32)` node records — the
/// scratch space the parallel phase materializes result nodes into before
/// the deterministic commit imports them into the owning manager.
///
/// Storage is a directory of lazily-allocated fixed-size segments
/// ([`OnceLock`]-initialized), so `get` never observes a reallocation and
/// `reset` can recycle every segment without freeing. Slot words are
/// relaxed atomics; publication ordering is provided by the channel that
/// transports the slot *index* (see the module docs).
#[derive(Debug)]
pub struct OverlayArena {
    segs: Vec<OnceLock<Box<[OverlaySlot]>>>,
    next: AtomicU32,
}

impl Default for OverlayArena {
    fn default() -> Self {
        Self::new()
    }
}

impl OverlayArena {
    /// An empty arena (no segments allocated yet).
    #[must_use]
    pub fn new() -> Self {
        OverlayArena {
            segs: (0..MAX_SEGS).map(|_| OnceLock::new()).collect(),
            next: AtomicU32::new(0),
        }
    }

    #[inline]
    fn seg(&self, s: usize) -> &[OverlaySlot] {
        self.segs[s].get_or_init(|| {
            (0..SEG_LEN)
                .map(|_| OverlaySlot::default())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        })
    }

    /// Append a record, returning its index.
    ///
    /// # Panics
    /// Panics if the arena is full (2^30 records).
    pub fn alloc(&self, a: u32, b: u32, c: u32) -> u32 {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(
            (i as usize) < MAX_SEGS * SEG_LEN,
            "overlay arena exhausted (2^30 nodes)"
        );
        let slot = &self.seg(i as usize >> SEG_BITS)[i as usize & (SEG_LEN - 1)];
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        i
    }

    /// Read record `i` (must have been obtained from [`OverlayArena::alloc`]
    /// through a synchronizing channel — the sharded table or the cache).
    #[inline]
    #[must_use]
    pub fn get(&self, i: u32) -> (u32, u32, u32) {
        let slot = &self.seg(i as usize >> SEG_BITS)[i as usize & (SEG_LEN - 1)];
        (
            slot.a.load(Ordering::Relaxed),
            slot.b.load(Ordering::Relaxed),
            slot.c.load(Ordering::Relaxed),
        )
    }

    /// Records currently allocated.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }

    /// `true` when nothing is allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Segments with backing storage allocated — the arena's resident
    /// footprint survives [`OverlayArena::reset`], so this is the
    /// high-water mark the `session.*` metrics report.
    #[must_use]
    pub fn segments_allocated(&self) -> usize {
        self.segs.iter().filter(|s| s.get().is_some()).count()
    }

    /// Recycle the arena: existing segments stay allocated, indices restart
    /// at 0. Callers must ensure no stale index is dereferenced afterwards
    /// (the managers clear the sharded table and bump the cache epoch in
    /// the same breath).
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
    }
}

// ───────────────────────── fork-join execution ───────────────────────────

/// Per-invocation execution statistics of [`fork_join`].
#[derive(Debug, Clone, Default)]
pub struct FjStats {
    /// Workers that participated (including the submitting thread).
    pub workers: usize,
    /// Tasks executed by each worker; index 0 is the submitting thread.
    pub executed: Vec<u64>,
    /// Tasks executed by helper threads — work the submitting thread did
    /// not have to do itself ("stolen" from the shared queue).
    pub stolen: u64,
}

/// A worker task's panic, captured and surfaced at join time by
/// [`try_fork_join`] instead of cascading through the pool as an opaque
/// cross-thread abort (the classic symptom: one worker dies mid-insert,
/// every other worker then panics "lock poisoned", and the caller sees
/// whichever secondary panic won the race).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the first task body observed panicking.
    pub task: usize,
    /// The panic payload, stringified (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fork-join task {} panicked: {}", self.task, self.message)
    }
}

impl std::error::Error for TaskPanic {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `tasks` task bodies across up to `threads` workers (the calling
/// thread plus `threads - 1` scoped helpers) and block until all complete.
///
/// Tasks are claimed from a shared atomic cursor — the flat fork-join shape
/// that fits recursion split at the top k levels, where the caller already
/// enumerated the subproblems. With `threads <= 1` (or a single task)
/// everything runs inline on the calling thread, spawning nothing.
///
/// The body receives the task index. A panic in any task body is caught
/// in the worker; the remaining workers stop claiming new tasks, the pool
/// drains, and the **first** captured panic is returned as
/// [`Err(TaskPanic)`](TaskPanic) when the scope joins — one clean error on
/// the calling thread instead of a cross-thread panic cascade.
///
/// # Errors
/// Returns the first captured [`TaskPanic`] when any task body panicked.
pub fn try_fork_join<F: Fn(usize) + Sync>(
    threads: usize,
    tasks: usize,
    body: F,
) -> Result<FjStats, TaskPanic> {
    let (stats, stopped) = try_fork_join_governed(threads, tasks, || false, body)?;
    debug_assert!(!stopped, "a constant-false stop predicate never stops");
    Ok(stats)
}

/// [`try_fork_join`] with a cooperative stop predicate, checked by every
/// worker **between tasks** (the same boundary the panic flag uses): once
/// `should_stop` returns `true`, no further tasks are claimed, the pool
/// drains the in-flight ones and `stopped = true` comes back with the
/// stats. This is how cancellation, deadlines and node budgets propagate
/// through the parallel managers — see [`crate::govern::StopView`], whose
/// `should_stop` the managers adapt into this predicate.
///
/// Tasks already running when the predicate first turns true complete
/// normally; the stop latency is therefore one task body, which is why the
/// managers keep split granularity fine (many small tasks) rather than
/// spawning few large ones.
///
/// # Errors
/// Returns the first captured [`TaskPanic`] when any task body panicked
/// (a panic takes precedence over a cooperative stop).
pub fn try_fork_join_governed<F: Fn(usize) + Sync, S: Fn() -> bool + Sync>(
    threads: usize,
    tasks: usize,
    should_stop: S,
    body: F,
) -> Result<(FjStats, bool), TaskPanic> {
    let failed = AtomicBool::new(false);
    let stopped = AtomicBool::new(false);
    let first_panic: Mutex<Option<TaskPanic>> = Mutex::new(None);
    let guarded = |i: usize| {
        // Per-worker task span: each pool thread carries its own trace
        // tid, so Perfetto shows one track per worker. Free when tracing
        // and profiling are off.
        let _task = crate::obs::span(crate::obs::Op::ParTask);
        // `body` only captures Sync state; a panic inside it cannot leave
        // our bookkeeping inconsistent, and any caller-side lock it held is
        // poisoned by the unwind exactly as without the catch.
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(i))) {
            let mut slot = first_panic.lock().unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(TaskPanic {
                    task: i,
                    message: panic_message(payload.as_ref()),
                });
            }
            failed.store(true, Ordering::Release);
        }
    };
    // One predicate evaluation per between-task boundary; a true result is
    // latched so every other worker sees it as one cheap flag load.
    let stop_here = || {
        if stopped.load(Ordering::Acquire) {
            return true;
        }
        if should_stop() {
            stopped.store(true, Ordering::Release);
            return true;
        }
        false
    };
    let workers = threads.max(1).min(tasks.max(1));
    let stats = if workers <= 1 {
        let mut done = 0u64;
        for i in 0..tasks {
            if failed.load(Ordering::Acquire) || stop_here() {
                break;
            }
            guarded(i);
            done += 1;
        }
        FjStats {
            workers: 1,
            executed: vec![done],
            stolen: 0,
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let executed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let run = |w: usize| {
            let mut mine = 0u64;
            loop {
                if failed.load(Ordering::Acquire) || stop_here() {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                guarded(i);
                mine += 1;
            }
            executed[w].store(mine, Ordering::Relaxed);
        };
        std::thread::scope(|s| {
            for w in 1..workers {
                let run = &run;
                s.spawn(move || run(w));
            }
            run(0);
        });
        let executed: Vec<u64> = executed.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let stolen = executed[1..].iter().sum();
        FjStats {
            workers,
            executed,
            stolen,
        }
    };
    let outcome = first_panic
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    match outcome {
        Some(p) => Err(p),
        None => Ok((stats, stopped.load(Ordering::Acquire))),
    }
}

/// [`try_fork_join`], re-raising a captured worker panic as one clean
/// panic on the calling thread at join time.
///
/// # Panics
/// Panics with the first worker task's panic message when any task body
/// panicked.
pub fn fork_join<F: Fn(usize) + Sync>(threads: usize, tasks: usize, body: F) -> FjStats {
    match try_fork_join(threads, tasks, body) {
        Ok(stats) => stats,
        Err(p) => panic!("{p}"),
    }
}

/// Worker-count knob shared by the examples and benches: the `BBDD_THREADS`
/// environment variable, falling back to `default` when unset or invalid.
#[must_use]
pub fn threads_from_env(default: usize) -> usize {
    std::env::var("BBDD_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
    struct K2(u32, u32);
    impl TableKey for K2 {
        fn table_hash(&self, h: &CantorHasher) -> u64 {
            h.hash2(u64::from(self.0), u64::from(self.1))
        }
    }

    #[test]
    fn sharded_first_insert_wins() {
        let t: ShardedTable<K2> = ShardedTable::new(4, 16);
        assert_eq!(t.get_or_insert_with(K2(7, 9), || 1), 1);
        assert_eq!(t.get_or_insert_with(K2(7, 9), || 2), 1);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get_or_insert_with(K2(7, 9), || 3), 3);
    }

    #[test]
    fn sharded_spreads_and_enumerates() {
        let t: ShardedTable<K2> = ShardedTable::new(8, 16);
        for i in 0..2000u32 {
            assert_eq!(t.get_or_insert_with(K2(i, i ^ 0xABCD), || i), i);
        }
        assert_eq!(t.len(), 2000);
        let stats = t.shard_stats();
        assert_eq!(stats.len(), 8);
        assert_eq!(stats.iter().map(|s| s.len).sum::<usize>(), 2000);
        // The Fibonacci route must not park everything in one shard.
        let populated = stats.iter().filter(|s| s.len > 0).count();
        assert!(populated >= 4, "only {populated} of 8 shards populated");
        let mut seen = 0usize;
        t.for_each(|k, v| {
            assert_eq!(k.0, v);
            seen += 1;
        });
        assert_eq!(seen, 2000);
    }

    #[test]
    fn sharded_concurrent_inserts_agree() {
        let t: ShardedTable<K2> = ShardedTable::new(8, 16);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1500u32 {
                        let v = t.get_or_insert_with(K2(i, 1), || i * 3);
                        assert_eq!(v, i * 3, "value is a function of the key");
                    }
                });
            }
        });
        assert_eq!(t.len(), 1500);
    }

    #[test]
    fn atomic_cache_roundtrip_and_epoch() {
        let c = AtomicCache::new(1 << 8);
        for i in 0..500u64 {
            c.insert(i, i * 7, (i % 21) as u32, i as u32 + 13);
        }
        let mut survived = 0;
        for i in 0..500u64 {
            if let Some(v) = c.get(i, i * 7, (i % 21) as u32) {
                assert_eq!(v, i as u32 + 13);
                survived += 1;
            }
        }
        assert!(survived > 0, "some entries must survive");
        c.bump_epoch();
        for i in 0..500u64 {
            assert_eq!(c.get(i, i * 7, (i % 21) as u32), None);
        }
        let s = c.stats();
        assert_eq!(s.invalidations, 1);
        assert!(s.hits >= survived);
    }

    #[test]
    fn epoch_and_tag_never_alias() {
        // Regression: fingerprinting the raw `tag ^ epoch` aliased (tag,
        // epoch) pairs across invalidations (tag 4 at epoch 8 == tag 12 at
        // epoch 0), resurrecting stale entries as false hits. Interleave
        // inserts with epoch bumps and probe the whole small-tag space.
        let c = AtomicCache::new(1 << 8);
        for round in 0..24u32 {
            c.insert(7, 9, round, 1000 + round);
            assert_eq!(c.get(7, 9, round), Some(1000 + round));
            c.bump_epoch();
            for tag in 0..64u32 {
                assert_eq!(
                    c.get(7, 9, tag),
                    None,
                    "round {round} tag {tag} resurrected"
                );
            }
        }
    }

    #[test]
    fn atomic_cache_distinct_tags_do_not_alias() {
        let c = AtomicCache::new(1 << 8);
        c.insert(5, 6, 1, 100);
        c.insert(5, 6, 2, 200);
        if let Some(v) = c.get(5, 6, 1) {
            assert_eq!(v, 100);
        }
        assert_eq!(c.get(5, 6, 2), Some(200));
    }

    #[test]
    fn atomic_cache_concurrent_hammer_returns_canonical_values() {
        // Many threads insert and read the same key population, where the
        // value is a pure function of the key: any hit must return exactly
        // that function's value (torn entries must never surface).
        let c = AtomicCache::new(1 << 8);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    let mut state = t | 1;
                    for _ in 0..20_000 {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let k = state >> 48;
                        c.insert(k, k ^ 0xFFFF, 3, (k as u32).wrapping_mul(2654435761));
                        if let Some(v) = c.get(k, k ^ 0xFFFF, 3) {
                            assert_eq!(v, (k as u32).wrapping_mul(2654435761));
                        }
                    }
                });
            }
        });
        assert!(c.stats().inserts >= 80_000);
    }

    #[test]
    fn overlay_arena_alloc_get_reset() {
        let a = OverlayArena::new();
        assert!(a.is_empty());
        let i = a.alloc(1, 2, 3);
        let j = a.alloc(4, 5, 6);
        assert_eq!(a.get(i), (1, 2, 3));
        assert_eq!(a.get(j), (4, 5, 6));
        assert_eq!(a.len(), 2);
        a.reset();
        assert!(a.is_empty());
        let k = a.alloc(7, 8, 9);
        assert_eq!(k, 0, "indices restart after reset");
        assert_eq!(a.get(k), (7, 8, 9));
    }

    #[test]
    fn overlay_arena_crosses_segments() {
        let a = OverlayArena::new();
        let n = SEG_LEN as u32 + 10;
        for i in 0..n {
            assert_eq!(a.alloc(i, !i, i ^ 7), i);
        }
        for i in (0..n).step_by(1000) {
            assert_eq!(a.get(i), (i, !i, i ^ 7));
        }
    }

    #[test]
    fn fork_join_runs_every_task_once() {
        for threads in [1, 2, 4, 8] {
            let done: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
            let stats = fork_join(threads, 100, |i| {
                done[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, d) in done.iter().enumerate() {
                assert_eq!(d.load(Ordering::Relaxed), 1, "task {i}, threads {threads}");
            }
            assert_eq!(stats.executed.iter().sum::<u64>(), 100);
            assert_eq!(
                stats.stolen,
                stats.executed[1..].iter().sum::<u64>(),
                "stolen = helper-executed"
            );
        }
    }

    #[test]
    fn fork_join_inline_when_single_threaded() {
        let stats = fork_join(1, 7, |_| {});
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.executed, vec![7]);
    }

    #[test]
    fn fork_join_surfaces_worker_panic_as_clean_error() {
        for threads in [1usize, 4] {
            let err = try_fork_join(threads, 64, |i| {
                if i == 13 {
                    panic!("deliberate failure in task {i}");
                }
            })
            .expect_err("a panicking task must surface");
            assert!(
                err.message.contains("deliberate failure"),
                "got: {}",
                err.message
            );
            assert!(err.to_string().contains("fork-join task"));
        }
        // The non-failing path is unchanged.
        assert!(try_fork_join(4, 16, |_| {}).is_ok());
    }

    #[test]
    fn poisoned_shard_is_a_clean_join_error_and_clear_recovers() {
        // Regression: a worker panicking inside `get_or_insert_with`'s make
        // closure used to poison the shard lock and cascade every other
        // worker into an opaque "shard lock poisoned" abort. Poison a shard
        // deliberately, then check (a) the pool reports ONE clean error at
        // join time and (b) `clear()` heals the table.
        let t: ShardedTable<K2> = ShardedTable::new(1, 16); // 1 shard: every key hits it
        let err = try_fork_join(4, 32, |i| {
            let _ = t.get_or_insert_with(K2(i as u32, 7), || {
                if i == 0 {
                    panic!("worker died mid-insert");
                }
                i as u32
            });
        })
        .expect_err("the poisoned shard must fail the pool");
        assert!(
            err.message.contains("mid-insert") || err.message.contains("poisoned"),
            "got: {}",
            err.message
        );
        // Poison-tolerant maintenance still works…
        let _ = t.len();
        let _ = t.shard_stats();
        // …and clear() un-poisons the shard so the table is usable again.
        t.clear();
        assert_eq!(t.get_or_insert_with(K2(5, 7), || 99), 99);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn governed_fork_join_stops_between_tasks() {
        for threads in [1usize, 4] {
            let done = AtomicU64::new(0);
            // Stop once 5 tasks have run: no worker may claim a new task
            // after observing the predicate true.
            let (stats, stopped) = try_fork_join_governed(
                threads,
                1000,
                || done.load(Ordering::Relaxed) >= 5,
                |_| {
                    done.fetch_add(1, Ordering::Relaxed);
                },
            )
            .expect("no panics");
            assert!(stopped, "threads {threads}: predicate must stop the pool");
            let ran = stats.executed.iter().sum::<u64>();
            assert!(ran >= 5, "threads {threads}: ran {ran}");
            // Stop latency is bounded by in-flight tasks: one per worker.
            assert!(
                ran <= 5 + threads as u64,
                "threads {threads}: ran {ran} tasks after the stop"
            );
        }
        // A never-true predicate runs everything and reports no stop.
        let (stats, stopped) = try_fork_join_governed(4, 64, || false, |_| {}).unwrap();
        assert!(!stopped);
        assert_eq!(stats.executed.iter().sum::<u64>(), 64);
    }

    #[test]
    fn threads_env_parsing() {
        // Avoid mutating the process environment (other tests run in
        // parallel); only exercise the fallback path here.
        assert_eq!(threads_from_env(3), 3);
    }
}

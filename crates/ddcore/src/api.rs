//! The unified Boolean-function API over every decision-diagram backend.
//!
//! This workspace ships four managers — `bbdd::Bbdd`, `robdd::Robdd` and
//! their fork-join front-ends `bbdd::ParBbdd` / `robdd::ParRobdd` — and
//! before this module existed each of them re-declared the same owned-handle
//! operation suite by hand, and every manager-agnostic consumer (the network
//! builder, the equivalence checker, the synthesis flow, the CLI) was either
//! specialized per manager or funneled through ad-hoc traits. `ddcore::api`
//! replaces all of that with one trait family, in the shape multi-backend
//! BDD packages converge on (OxiDD's `Manager`/`BooleanFunction`,
//! Sølvsten & van de Pol's backend-hiding `bdd` value type):
//!
//! * [`RawManager`] — the *backend* contract: edge-level operations plus the
//!   root registry and the handle-boundary hook. This is the one trait a new
//!   backend implements; everything below is derived from it.
//! * [`ManagerRef`] — the shared front-end over any backend: a cheaply
//!   cloneable reference handing out owned [`Function`] handles.
//! * [`FunctionManager`] / [`BooleanFunction`] — the trait pair generic
//!   drivers are written against, implemented once for
//!   `ManagerRef<B>` / `Function<B>` and therefore automatically by every
//!   backend. Dispatch is fully static: a driver generic over
//!   `M: FunctionManager` monomorphizes per backend, with no vtables and no
//!   allocation added on the operation hot path.
//!
//! # Handles and garbage collection
//!
//! A [`Function`] owns a slot in the backend's external-root registry
//! ([`crate::roots::RootSet`]): clone bumps the slot's refcount, drop
//! releases it, and every collection or reordering the backend runs traces
//! the registry — the "forgot a root" bug class stays unrepresentable, as
//! established by the owned-handle redesign this module generalizes. Each
//! operation ends at a *handle boundary* ([`RawManager::after_op`]) where a
//! latched automatic GC may run, strictly after the result was registered.
//!
//! # Example
//!
//! ```
//! use ddcore::api::{BooleanFunction, FunctionManager};
//!
//! /// Works identically on every backend in the workspace.
//! fn majority<M: FunctionManager>(mgr: &M) -> M::Function {
//!     let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
//!     let ab = a.and(&b);
//!     let bc = b.and(&c);
//!     let ac = a.and(&c);
//!     ab.or(&bc).or(&ac)
//! }
//! ```
//!
//! On a *concrete* handle type (`bbdd::BbddFn`, `robdd::RobddFn`, …) the
//! `std::ops` sugar applies on references: `&a & &b`, `&a | &b`, `&a ^ &b`,
//! `!&a`.
//!
//! (See `tests/api_conformance.rs` at the workspace root for the suite that
//! drives every operation below against shadow truth tables on all four
//! managers.)

use crate::boolop::BoolOp;
use crate::dvo::{DvoPolicy, DvoStrategy};
use crate::govern::{OpAbort, OpBudget};
use crate::obs::{self, MetricsSnapshot};
use crate::roots::RootSet;
use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

/// The backend contract: edge-level Boolean-function operations plus root
/// registration and the handle-boundary hook.
///
/// Implement this one trait for a manager type and the whole
/// [`FunctionManager`] / [`BooleanFunction`] pair comes for free through
/// [`ManagerRef`] / [`Function`]. Implementations delegate to the backend's
/// inherent edge API; the `*_edge` names keep the trait methods from
/// shadowing those inherent methods.
///
/// The edge type is the backend's raw, unprotected function currency
/// (`Copy`, valid only until the next collection point unless covered by a
/// registered handle) — exactly the role `bbdd::Edge` / `robdd::Edge`
/// already play.
pub trait RawManager: Sized {
    /// The backend's raw edge type.
    type Edge: Copy + Eq + std::fmt::Debug + std::ops::Not<Output = Self::Edge>;

    /// A fresh backend over `num_vars` variables with default configuration
    /// (parallel backends read their thread count from the environment).
    fn with_vars(num_vars: usize) -> Self;

    /// Number of variables managed.
    fn num_vars(&self) -> usize;

    /// The external-root registry handles register themselves with.
    fn root_registry(&self) -> &RootSet;

    /// The packed-bits form of an edge stored in the root registry.
    fn edge_bits(e: Self::Edge) -> u64;

    /// The constant function as an edge.
    fn constant_edge(&self, value: bool) -> Self::Edge;

    /// The positive literal of `var`.
    fn var_edge(&mut self, var: usize) -> Self::Edge;

    /// `f ⊗ g` for an arbitrary binary operator.
    fn apply_edge(&mut self, op: BoolOp, f: Self::Edge, g: Self::Edge) -> Self::Edge;

    /// [`RawManager::apply_edge`] under a resource budget (see
    /// [`crate::govern::OpBudget`]). The backend polls the budget at its
    /// recursion checkpoints; on `Err` the manager must remain fully
    /// usable, with any partially built nodes reclaimed by the next GC.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_apply_edge(
        &mut self,
        op: BoolOp,
        f: Self::Edge,
        g: Self::Edge,
        budget: &mut OpBudget,
    ) -> Result<Self::Edge, OpAbort>;

    /// If-then-else `f ? g : h`.
    fn ite_edge(&mut self, f: Self::Edge, g: Self::Edge, h: Self::Edge) -> Self::Edge;

    /// [`RawManager::ite_edge`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_ite_edge(
        &mut self,
        f: Self::Edge,
        g: Self::Edge,
        h: Self::Edge,
        budget: &mut OpBudget,
    ) -> Result<Self::Edge, OpAbort>;

    /// Existential cube quantification `∃ vars . f`.
    fn exists_edge(&mut self, f: Self::Edge, vars: &[usize]) -> Self::Edge;

    /// [`RawManager::exists_edge`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_exists_edge(
        &mut self,
        f: Self::Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Self::Edge, OpAbort>;

    /// Universal cube quantification `∀ vars . f`.
    fn forall_edge(&mut self, f: Self::Edge, vars: &[usize]) -> Self::Edge;

    /// [`RawManager::forall_edge`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_forall_edge(
        &mut self,
        f: Self::Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Self::Edge, OpAbort>;

    /// Fused relational product `∃ vars . (f ∧ g)`.
    fn and_exists_edge(&mut self, f: Self::Edge, g: Self::Edge, vars: &[usize]) -> Self::Edge;

    /// [`RawManager::and_exists_edge`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_and_exists_edge(
        &mut self,
        f: Self::Edge,
        g: Self::Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Self::Edge, OpAbort>;

    /// Restriction `f|_{var = value}`.
    fn restrict_edge(&mut self, f: Self::Edge, var: usize, value: bool) -> Self::Edge;

    /// Substitution `f[var := g]`.
    fn compose_edge(&mut self, f: Self::Edge, var: usize, g: Self::Edge) -> Self::Edge;

    /// [`RawManager::compose_edge`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_compose_edge(
        &mut self,
        f: Self::Edge,
        var: usize,
        g: Self::Edge,
        budget: &mut OpBudget,
    ) -> Result<Self::Edge, OpAbort>;

    /// Simultaneous substitution (`subs[v]` replaces variable `v`).
    fn vector_compose_edge(&mut self, f: Self::Edge, subs: &[Option<Self::Edge>]) -> Self::Edge;

    /// Evaluate `f` under a full assignment.
    fn eval_edge(&self, f: Self::Edge, assignment: &[bool]) -> bool;

    /// Exact number of satisfying assignments over all variables.
    fn sat_count_edge(&self, f: Self::Edge) -> u128;

    /// [`RawManager::sat_count_edge`], or `None` when the count could
    /// overflow `u128` (more than 127 variables). `Some` values are exact.
    fn sat_count_checked_edge(&self, f: Self::Edge) -> Option<u128>;

    /// [`RawManager::sat_count_edge`] under a resource budget. Counting
    /// allocates no nodes, so an abort leaves no trace in the manager.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_sat_count_edge(&self, f: Self::Edge, budget: &mut OpBudget) -> Result<u128, OpAbort>;

    /// [`RawManager::sat_count_edge`] taken over a caller-declared
    /// variable universe `0..n_vars` instead of the manager's own
    /// `0..num_vars()` — the normalization CNF model counting needs when
    /// the DIMACS header declares more (or fewer) variables than the
    /// manager materialized.
    ///
    /// Writing `m = num_vars()` and `c` for the count over `0..m`:
    /// the count over `0..n_vars` is `c · 2^(n_vars − m)` when
    /// `n_vars ≥ m` (each model extends freely over the extra
    /// variables), and exactly `c / 2^(m − n_vars)` when `n_vars < m`
    /// *provided* the function does not depend on any variable
    /// `≥ n_vars` (each declared-universe model then extends to exactly
    /// `2^(m − n_vars)` manager-universe models).
    ///
    /// Returns `None` when the result is not exactly representable:
    /// `n_vars > 127`, `num_vars() > 127`, or the function depends on a
    /// variable outside `0..n_vars`. `Some` values are always exact.
    fn sat_count_over_edge(&mut self, f: Self::Edge, n_vars: usize) -> Option<u128> {
        let m = self.num_vars();
        if n_vars > 127 || (n_vars < m && self.support_edge(f).iter().any(|&v| v >= n_vars)) {
            return None;
        }
        let c = self.sat_count_checked_edge(f)?;
        // `c ≤ 2^m` and `n_vars ≤ 127`, so the left shift cannot overflow.
        Some(if n_vars >= m {
            c << (n_vars - m)
        } else {
            c >> (m - n_vars)
        })
    }

    /// [`RawManager::sat_count_over_edge`] under a resource budget.
    /// `Ok(None)` means the count is not exactly representable (see the
    /// unbudgeted variant); budget exhaustion is the `Err` arm.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_sat_count_over_edge(
        &mut self,
        f: Self::Edge,
        n_vars: usize,
        budget: &mut OpBudget,
    ) -> Result<Option<u128>, OpAbort> {
        let m = self.num_vars();
        if n_vars > 127
            || m > 127
            || (n_vars < m && self.support_edge(f).iter().any(|&v| v >= n_vars))
        {
            return Ok(None);
        }
        let c = self.try_sat_count_edge(f, budget)?;
        Ok(Some(if n_vars >= m {
            c << (n_vars - m)
        } else {
            c >> (m - n_vars)
        }))
    }

    /// One satisfying assignment, or `None` for constant false.
    fn any_sat_edge(&self, f: Self::Edge) -> Option<Vec<bool>>;

    /// Up to `limit` satisfying assignments.
    fn all_sat_edge(&self, f: Self::Edge, limit: usize) -> Vec<Vec<bool>>;

    /// Nodes reachable from `f`.
    fn node_count_edge(&self, f: Self::Edge) -> usize;

    /// Nodes reachable from any of `roots` (shared nodes counted once).
    fn shared_node_count_edges(&self, roots: &[Self::Edge]) -> usize;

    /// Variables `f` depends on, ascending.
    fn support_edge(&mut self, f: Self::Edge) -> Vec<usize>;

    /// Graphviz DOT rendering of the diagrams rooted at `roots`.
    fn to_dot_edges(&self, roots: &[Self::Edge], names: &[&str]) -> String;

    /// Internal nodes per diagram level (top of the order first is not
    /// required — the convention is the backend's own log convention) for
    /// the diagrams rooted at `roots`; `None` when the backend has no
    /// meaningful per-level view.
    fn level_profile_edges(&self, _roots: &[Self::Edge]) -> Option<Vec<usize>> {
        None
    }

    /// The handle-boundary hook, run after an operation's result has been
    /// registered: the latched automatic GC (and, for parallel front-ends,
    /// the concurrent-cache epoch sync) goes here. Registration-first is the
    /// pinning rule that makes the latched collection safe.
    fn after_op(&mut self);

    /// Collect every node not reachable from the root registry; returns the
    /// number of nodes reclaimed.
    fn gc(&mut self) -> usize;

    /// Arm the automatic-GC latch (`0` disables).
    fn set_gc_threshold(&mut self, threshold: usize);

    /// The automatic-GC threshold (`0` = disabled).
    fn gc_threshold(&self) -> usize;

    /// Currently stored nodes.
    fn live_nodes(&self) -> usize;

    /// Run Rudell sifting, returning the post-sift live node count, or
    /// `None` when the backend does not support reordering at all (e.g.
    /// table-less test backends; the parallel front-ends delegate to their
    /// inner sequential manager at a handle boundary).
    fn try_sift(&mut self) -> Option<usize>;

    /// Bounded sifting under a resource budget: `None` when the backend
    /// does not support reordering; otherwise the post-sift live node
    /// count, or the budget's abort reason. On abort the variable order is
    /// left consistent (the variable being sifted is parked back at its
    /// best position first) and every registered handle stays valid — the
    /// result is a partially improved order, not a corrupted one.
    fn sift_bounded(&mut self, budget: &mut OpBudget) -> Option<Result<usize, OpAbort>>;

    /// Run a specific [`DvoStrategy`] under a resource budget, with the
    /// same contract as [`RawManager::sift_bounded`] (which is simply this
    /// method with the installed policy's strategy, defaulting to full
    /// sift). `None` when the backend does not support reordering.
    fn reorder_with(
        &mut self,
        _strategy: DvoStrategy,
        _budget: &mut OpBudget,
    ) -> Option<Result<usize, OpAbort>> {
        None
    }

    /// Install (or clear, with `None`) the dynamic-reordering policy:
    /// which strategy to run and when the schedule fires. Scheduled
    /// reorders run at operation boundaries (the GC-latch hook) and at the
    /// drivers' collection gates. No-op on backends without reordering.
    fn set_reorder_policy(&mut self, _policy: Option<DvoPolicy>) {}

    /// The installed dynamic-reordering policy, if any.
    fn reorder_policy(&self) -> Option<DvoPolicy> {
        None
    }

    /// Arm automatic reordering at a live-node threshold (no-op on backends
    /// without dynamic reordering). Sugar for installing a
    /// full-sift/node-threshold [`DvoPolicy`]; `0` clears the policy.
    fn set_auto_reorder(&mut self, _threshold: usize) {}

    /// Collect and, when the installed policy's schedule is due, reorder.
    /// Returns `true` when a reorder ran. Defaults to `false` (nothing
    /// armed).
    fn reorder_if_needed(&mut self) -> bool {
        false
    }

    /// [`RawManager::reorder_if_needed`] under a resource budget: `Ok`
    /// whether a reorder ran, or the abort reason when a scheduled reorder
    /// was cut short. On abort the order is consistent, every handle stays
    /// valid, and the schedule re-arms (the trigger is consumed), so the
    /// caller may simply continue.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn reorder_if_needed_bounded(&mut self, _budget: &mut OpBudget) -> Result<bool, OpAbort> {
        Ok(false)
    }

    /// Install a specific variable order (a permutation of `0..num_vars`,
    /// top of the diagram first), e.g. one computed by a static-ordering
    /// heuristic. Returns `false` on backends without reordering.
    fn set_order(&mut self, _order: &[usize]) -> bool {
        false
    }

    /// The current variable order, top of the diagram first.
    fn variable_order(&self) -> Vec<usize>;

    /// A one-line human-readable summary of the backend's counters.
    fn stats_line(&self) -> String;

    /// Fill the unified metrics registry: a [`MetricsSnapshot`] with the
    /// backend's counters under the stable section names (`nodes.*`,
    /// `cache.*`, `table.*`, `gc.*`, `roots.*`, `dvo.*`, `govern.*`, and
    /// `par.*` on parallel front-ends). This is the observability seam
    /// every formatter, JSON export and metrics test goes through.
    ///
    /// The default returns an empty snapshot so minimal test backends
    /// compile; real backends override it.
    fn observe(&self) -> MetricsSnapshot {
        MetricsSnapshot::new("unobserved")
    }

    /// Accounting hook for governed operations: the generic layer reports
    /// each `try_*` call's budget-checkpoint spend and outcome here, and
    /// backends accumulate it into their `govern.*` metrics (see
    /// [`crate::obs::GovernCounters`]). Default: no accounting.
    fn note_governed(&mut self, _checkpoints: u64, _abort: Option<OpAbort>) {}
}

/// A shared reference to a decision-diagram backend — the generic
/// implementation of [`FunctionManager`].
///
/// Cloning a `ManagerRef` clones the *reference*; all clones (including the
/// one inside every [`Function`] it hands out) address the same backend.
/// The backend sits behind a `RefCell`, so operations take `&self`; the
/// borrow is checked, not locked — a `ManagerRef` (like the handles it
/// produces) stays on one thread.
pub struct ManagerRef<B: RawManager> {
    inner: Rc<RefCell<B>>,
}

impl<B: RawManager> Clone for ManagerRef<B> {
    fn clone(&self) -> Self {
        ManagerRef {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<B: RawManager> std::fmt::Debug for ManagerRef<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagerRef").finish_non_exhaustive()
    }
}

impl<B: RawManager> ManagerRef<B> {
    /// Wrap an existing backend (use this to pick a non-default
    /// configuration, e.g. an explicit thread count).
    #[must_use]
    pub fn new(backend: B) -> Self {
        ManagerRef {
            inner: Rc::new(RefCell::new(backend)),
        }
    }

    /// A fresh default-configured backend over `num_vars` variables.
    #[must_use]
    pub fn with_vars(num_vars: usize) -> Self {
        Self::new(B::with_vars(num_vars))
    }

    /// Read access to the raw backend, for backend-specific features
    /// (structural introspection, statistics, serialization).
    ///
    /// # Panics
    /// Panics if called while an operation is in flight (the backend is a
    /// checked single borrow).
    #[must_use]
    pub fn backend(&self) -> Ref<'_, B> {
        self.inner.borrow()
    }

    /// Mutable access to the raw backend (edge-level API, sifting knobs,
    /// …). Dropping the guard before the next trait-level operation is the
    /// caller's responsibility — the borrow is checked at runtime.
    ///
    /// # Panics
    /// Panics if called while an operation is in flight.
    #[must_use]
    pub fn backend_mut(&self) -> RefMut<'_, B> {
        self.inner.borrow_mut()
    }

    /// Pin a raw edge of this backend as an owned [`Function`] handle — the
    /// bridge from the edge-level API into the protected handle world. The
    /// edge must belong to this manager.
    #[must_use]
    pub fn lift(&self, edge: B::Edge) -> Function<B> {
        let b = self.inner.borrow();
        Function::register(b.root_registry(), edge, Rc::clone(&self.inner))
    }

    /// Unwrap the backend, consuming this reference — the bridge *out* of
    /// the handle world, used by the session layer to freeze a built
    /// function library into an immutable shared snapshot
    /// (`ddcore::session::SharedBase`).
    ///
    /// Returns `None` (self is dropped) while any [`Function`] handle or
    /// `ManagerRef` clone is still alive: handles hold the backend cell,
    /// so extraction is only sound once the caller has released them all.
    #[must_use]
    pub fn into_backend(self) -> Option<B> {
        Rc::try_unwrap(self.inner).ok().map(RefCell::into_inner)
    }

    /// Register `e` as a handle, then run the handle-boundary hook (the
    /// result is pinned before any latched collection can fire).
    fn finish(&self, b: &mut B, e: B::Edge) -> Function<B> {
        let f = Function::register(b.root_registry(), e, Rc::clone(&self.inner));
        b.after_op();
        f
    }

    /// [`ManagerRef::finish`] for fallible operations. An abort is an
    /// operation boundary too: the handle-boundary hook still runs, so a
    /// latched GC can reclaim the aborted operation's partial results
    /// before the error even reaches the caller.
    fn finish_try(&self, b: &mut B, r: Result<B::Edge, OpAbort>) -> Result<Function<B>, OpAbort> {
        match r {
            Ok(e) => Ok(self.finish(b, e)),
            Err(reason) => {
                b.after_op();
                Err(reason)
            }
        }
    }
}

/// An owned, reference-counted handle to a Boolean function of one backend
/// — the generic implementation of [`BooleanFunction`].
///
/// The handle registers its edge in the backend's root registry on
/// creation; `Clone` bumps the slot's refcount and `Drop` releases it, so
/// everything a caller holds is visible to the collector by construction.
/// `Drop`/`Clone` touch only the registry (never the backend cell), so
/// handles may be dropped or cloned freely while an operation borrow is
/// live.
///
/// Equality requires the same manager and compares the underlying edges,
/// which — by canonicity — is function equality; handles of different
/// managers always compare unequal.
pub struct Function<B: RawManager> {
    edge: B::Edge,
    slot: u32,
    roots: RootSet,
    mgr: Rc<RefCell<B>>,
}

impl<B: RawManager> Function<B> {
    fn register(roots: &RootSet, edge: B::Edge, mgr: Rc<RefCell<B>>) -> Self {
        Function {
            edge,
            slot: roots.register(B::edge_bits(edge)),
            roots: roots.clone(),
            mgr,
        }
    }

    /// The underlying raw edge (valid as long as this handle lives).
    #[must_use]
    pub fn edge(&self) -> B::Edge {
        self.edge
    }

    /// Start a mutable operation on the owning backend: asserts that
    /// `others` share the manager, then borrows it.
    ///
    /// The check is a real assert (one pointer compare per operand,
    /// negligible next to any diagram operation): an edge interpreted
    /// against the wrong backend's node table would silently denote a
    /// different function, and the operator sugar makes mixing managers
    /// an easy mistake to write.
    fn op_ctx(&self, others: &[&Self]) -> (ManagerRef<B>, RefMut<'_, B>) {
        assert!(
            others.iter().all(|o| Rc::ptr_eq(&self.mgr, &o.mgr)),
            "operands must come from the same manager"
        );
        let m = ManagerRef {
            inner: Rc::clone(&self.mgr),
        };
        (m, self.mgr.borrow_mut())
    }

    /// Run one governed edge operation with full observability: an op
    /// span around the edge call, the backend's govern-accounting hook
    /// fed with this operation's checkpoint spend, and an abort instant
    /// event on `Err`. Free (two relaxed loads) when tracing and
    /// profiling are off.
    fn governed<E>(
        b: &mut B,
        op: obs::Op,
        budget: &mut OpBudget,
        run: impl FnOnce(&mut B, &mut OpBudget) -> Result<E, OpAbort>,
    ) -> Result<E, OpAbort> {
        let _span = obs::span(op);
        let spent = budget.used();
        let r = run(b, budget);
        let abort = r.as_ref().err().copied();
        b.note_governed(budget.used().saturating_sub(spent), abort);
        if let Some(reason) = abort {
            obs::abort_event(reason);
        }
        r
    }
}

impl<B: RawManager> Clone for Function<B> {
    fn clone(&self) -> Self {
        self.roots.retain(self.slot);
        Function {
            edge: self.edge,
            slot: self.slot,
            roots: self.roots.clone(),
            mgr: Rc::clone(&self.mgr),
        }
    }
}

impl<B: RawManager> Drop for Function<B> {
    fn drop(&mut self) {
        self.roots.release(self.slot);
    }
}

impl<B: RawManager> PartialEq for Function<B> {
    /// Handles are equal iff they belong to the **same manager** and
    /// denote the same canonical edge (which, by canonicity, is function
    /// equality). Two managers hand out overlapping edge bit patterns for
    /// unrelated functions, so the manager identity is part of the
    /// comparison — without it, `m1.var(0) == m2.var(1)` could silently
    /// hold.
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.mgr, &other.mgr) && self.edge == other.edge
    }
}

impl<B: RawManager> Eq for Function<B> {}

impl<B: RawManager> std::fmt::Debug for Function<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Function")
            .field("edge", &self.edge)
            .finish()
    }
}

/// The manager half of the unified API: variable/constant creation plus
/// GC and reordering control, generic over every backend.
///
/// Implemented once, for [`ManagerRef<B>`]; drivers written against this
/// trait (`fn f<M: FunctionManager>(mgr: &M, …)`) monomorphize per backend
/// — static dispatch, no trait objects.
pub trait FunctionManager: Clone {
    /// The owned function-handle type of this manager.
    type Function: BooleanFunction<Manager = Self>;

    /// Number of variables managed.
    fn num_vars(&self) -> usize;

    /// The constant function.
    fn constant(&self, value: bool) -> Self::Function;

    /// The positive literal of `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    fn var(&self, var: usize) -> Self::Function;

    /// The negative literal of `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    fn nvar(&self, var: usize) -> Self::Function {
        self.var(var).not()
    }

    /// Collect every node not reachable from a live handle; returns nodes
    /// reclaimed.
    fn gc(&self) -> usize;

    /// Arm the automatic-GC latch (`0` disables); collections run at
    /// operation boundaries, strictly after the result handle is
    /// registered.
    fn set_gc_threshold(&self, threshold: usize);

    /// The automatic-GC threshold (`0` = disabled).
    fn gc_threshold(&self) -> usize;

    /// Currently stored nodes.
    fn live_nodes(&self) -> usize;

    /// Live handle slots registered with this manager.
    fn external_roots(&self) -> usize;

    /// Reorder with the installed policy's strategy (full sift when no
    /// policy is installed), tracing the handle registry; returns the
    /// post-sift live node count — or `None` when the backend does not
    /// support dynamic reordering.
    fn reorder(&self) -> Option<usize>;

    /// [`FunctionManager::reorder`] under a resource budget: `None` when
    /// the backend does not support reordering, otherwise the post-sift
    /// live node count or the budget's abort reason. On abort the order is
    /// consistent and every handle stays valid.
    fn try_reorder(&self, budget: &mut OpBudget) -> Option<Result<usize, OpAbort>>;

    /// Reorder with a specific [`DvoStrategy`], regardless of the
    /// installed policy; `None` when the backend does not support
    /// reordering.
    fn reorder_with(&self, strategy: DvoStrategy) -> Option<usize>;

    /// [`FunctionManager::reorder_with`] under a resource budget, with the
    /// [`FunctionManager::try_reorder`] abort contract.
    fn try_reorder_with(
        &self,
        strategy: DvoStrategy,
        budget: &mut OpBudget,
    ) -> Option<Result<usize, OpAbort>>;

    /// Install (or clear) the dynamic-reordering policy. Scheduled firings
    /// happen at operation boundaries and collection gates; explicit
    /// [`FunctionManager::reorder`] calls use the policy's strategy.
    fn set_reorder_policy(&self, policy: Option<DvoPolicy>);

    /// The installed dynamic-reordering policy, if any.
    fn reorder_policy(&self) -> Option<DvoPolicy>;

    /// Arm automatic reordering at a live-node threshold (no-op on
    /// backends without dynamic reordering). Sugar for a
    /// full-sift/node-threshold policy; `0` clears it.
    fn set_auto_reorder(&self, threshold: usize);

    /// Collect and, when the installed policy's schedule is due, reorder;
    /// `true` when a reorder ran.
    fn reorder_if_needed(&self) -> bool;

    /// The garbage-collection opportunity generic drivers offer between
    /// construction batches: scheduled reorder if one is due, otherwise
    /// plain GC.
    fn collect(&self) {
        if !self.reorder_if_needed() {
            self.gc();
        }
    }

    /// [`FunctionManager::collect`] under a resource budget — the gate
    /// governed drivers (`try_build_network`) use, so a scheduled reorder
    /// firing mid-build stays abort-safe. Returns whether a reorder ran;
    /// on abort the order is consistent, the schedule has re-armed, and
    /// the manager stays fully usable.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_collect(&self, budget: &mut OpBudget) -> Result<bool, OpAbort>;

    /// Install a specific variable order (a permutation of `0..num_vars`,
    /// top first), e.g. from a static-ordering heuristic; `false` on
    /// backends without reordering.
    fn set_order(&self, order: &[usize]) -> bool;

    /// Nodes reachable from any of `fns`, shared nodes counted once.
    fn shared_node_count(&self, fns: &[Self::Function]) -> usize;

    /// Graphviz DOT rendering of the diagrams rooted at `fns`.
    fn to_dot(&self, fns: &[Self::Function], names: &[&str]) -> String;

    /// Internal nodes per diagram level for the diagrams rooted at `fns`
    /// (the log-output histogram); `None` when the backend has no
    /// per-level view.
    fn level_profile(&self, fns: &[Self::Function]) -> Option<Vec<usize>>;

    /// The current variable order, top of the diagram first.
    fn variable_order(&self) -> Vec<usize>;

    /// One-line human-readable backend counter summary.
    fn stats_line(&self) -> String;

    /// A [`MetricsSnapshot`] of the backend's unified metrics registry —
    /// the backend-agnostic counters behind [`MetricsSnapshot::format`],
    /// [`MetricsSnapshot::to_json`] and [`MetricsSnapshot::delta`].
    fn metrics(&self) -> MetricsSnapshot;
}

/// The function half of the unified API: an owned handle with the full
/// operation suite, generic over every backend.
///
/// All operations take `&self` — the handle knows its manager. On the
/// concrete handle type [`Function<B>`] the usual `std::ops` sugar is
/// available on handle *references*: `&f & &g`, `&f | &g`, `&f ^ &g` and
/// `!&f`. (Code generic over `M: FunctionManager` uses the named methods —
/// Rust does not propagate operator bounds through a trait.)
pub trait BooleanFunction: Clone + PartialEq + std::fmt::Debug + Sized {
    /// The manager type this handle belongs to.
    type Manager: FunctionManager<Function = Self>;

    /// A clone of the owning manager reference.
    fn manager(&self) -> Self::Manager;

    /// `self ⊗ g` for an arbitrary binary operator.
    fn apply(&self, op: BoolOp, g: &Self) -> Self;

    /// [`BooleanFunction::apply`] under a resource budget — the fallible
    /// entry point of the governed operation suite. The budget is caller
    /// owned and spans as many operations as the caller threads it
    /// through; on `Err` the manager stays fully usable and any partial
    /// results are reclaimed at the abort's own operation boundary.
    ///
    /// # Errors
    /// The budget's abort reason ([`OpAbort`]).
    fn try_apply(&self, op: BoolOp, g: &Self, budget: &mut OpBudget) -> Result<Self, OpAbort>;

    /// Budgeted conjunction.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_and(&self, g: &Self, budget: &mut OpBudget) -> Result<Self, OpAbort> {
        self.try_apply(BoolOp::AND, g, budget)
    }

    /// Budgeted disjunction.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_or(&self, g: &Self, budget: &mut OpBudget) -> Result<Self, OpAbort> {
        self.try_apply(BoolOp::OR, g, budget)
    }

    /// Budgeted exclusive or.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_xor(&self, g: &Self, budget: &mut OpBudget) -> Result<Self, OpAbort> {
        self.try_apply(BoolOp::XOR, g, budget)
    }

    /// Complement (free — complement edges — and no collection point).
    #[must_use]
    fn not(&self) -> Self;

    /// Conjunction.
    fn and(&self, g: &Self) -> Self {
        self.apply(BoolOp::AND, g)
    }

    /// Disjunction.
    fn or(&self, g: &Self) -> Self {
        self.apply(BoolOp::OR, g)
    }

    /// Exclusive or.
    fn xor(&self, g: &Self) -> Self {
        self.apply(BoolOp::XOR, g)
    }

    /// Biconditional.
    fn xnor(&self, g: &Self) -> Self {
        self.apply(BoolOp::XNOR, g)
    }

    /// Negated conjunction.
    fn nand(&self, g: &Self) -> Self {
        self.apply(BoolOp::NAND, g)
    }

    /// Negated disjunction.
    fn nor(&self, g: &Self) -> Self {
        self.apply(BoolOp::NOR, g)
    }

    /// Implication `¬self ∨ g`.
    fn imp(&self, g: &Self) -> Self {
        self.apply(BoolOp::IMPLIES, g)
    }

    /// If-then-else `self ? g : h`.
    fn ite(&self, g: &Self, h: &Self) -> Self;

    /// Budgeted if-then-else.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_ite(&self, g: &Self, h: &Self, budget: &mut OpBudget) -> Result<Self, OpAbort>;

    /// Existential cube quantification `∃ vars . self`.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    fn exists(&self, vars: &[usize]) -> Self;

    /// Budgeted existential quantification.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    fn try_exists(&self, vars: &[usize], budget: &mut OpBudget) -> Result<Self, OpAbort>;

    /// Universal cube quantification `∀ vars . self`.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    fn forall(&self, vars: &[usize]) -> Self;

    /// Budgeted universal quantification.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    fn try_forall(&self, vars: &[usize], budget: &mut OpBudget) -> Result<Self, OpAbort>;

    /// Fused relational product `∃ vars . (self ∧ g)` — never materializes
    /// the conjunction.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    fn and_exists(&self, g: &Self, vars: &[usize]) -> Self;

    /// Budgeted fused relational product.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    fn try_and_exists(
        &self,
        g: &Self,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Self, OpAbort>;

    /// Restriction `self|_{var = value}`.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    fn restrict(&self, var: usize, value: bool) -> Self;

    /// Substitution `self[var := g]`.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    fn compose(&self, var: usize, g: &Self) -> Self;

    /// Budgeted substitution.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    fn try_compose(&self, var: usize, g: &Self, budget: &mut OpBudget) -> Result<Self, OpAbort>;

    /// Simultaneous substitution: `subs[v]` replaces variable `v`, `None`
    /// entries stay untouched.
    ///
    /// # Panics
    /// Panics if `subs` is longer than `num_vars()`.
    fn vector_compose(&self, subs: &[Option<Self>]) -> Self;

    /// The Shannon cofactor pair `(self|_{var=1}, self|_{var=0})`.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    fn cofactors(&self, var: usize) -> (Self, Self);

    /// Evaluate under a full assignment (`assignment[v]` = value of
    /// variable `v`).
    fn eval(&self, assignment: &[bool]) -> bool;

    /// Exact number of satisfying assignments over all manager variables.
    fn sat_count(&self) -> u128;

    /// [`BooleanFunction::sat_count`], or `None` when the count could
    /// overflow `u128` (more than 127 manager variables). `Some` values
    /// are always exact — the saturating/panicking behavior of the
    /// unchecked variant cannot be observed through this method.
    fn sat_count_checked(&self) -> Option<u128>;

    /// Budgeted model counting. Counting allocates no nodes, so an abort
    /// leaves no trace in the manager.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_sat_count(&self, budget: &mut OpBudget) -> Result<u128, OpAbort>;

    /// Model count over a caller-declared variable universe `0..n_vars`
    /// instead of the manager's `0..num_vars()` — e.g. the variable count
    /// a DIMACS header declares. `None` when the result is not exactly
    /// representable: `n_vars > 127`, more than 127 manager variables, or
    /// the function depends on a variable outside `0..n_vars`. `Some`
    /// values are always exact (see [`RawManager::sat_count_over_edge`]
    /// for the normalization argument).
    fn sat_count_over(&self, n_vars: usize) -> Option<u128>;

    /// Budgeted [`BooleanFunction::sat_count_over`]; `Ok(None)` means not
    /// exactly representable, budget exhaustion is the `Err` arm.
    ///
    /// # Errors
    /// The budget's abort reason.
    fn try_sat_count_over(
        &self,
        n_vars: usize,
        budget: &mut OpBudget,
    ) -> Result<Option<u128>, OpAbort>;

    /// One satisfying assignment, or `None` for constant false.
    fn any_sat(&self) -> Option<Vec<bool>>;

    /// Up to `limit` satisfying assignments.
    fn all_sat(&self, limit: usize) -> Vec<Vec<bool>>;

    /// Nodes reachable from this function.
    fn node_count(&self) -> usize;

    /// Variables this function depends on, ascending.
    fn support(&self) -> Vec<usize>;

    /// Is this the constant-true function?
    fn is_true(&self) -> bool;

    /// Is this the constant-false function?
    fn is_false(&self) -> bool;

    /// Is this a constant function?
    fn is_constant(&self) -> bool {
        self.is_true() || self.is_false()
    }
}

impl<B: RawManager> FunctionManager for ManagerRef<B> {
    type Function = Function<B>;

    fn num_vars(&self) -> usize {
        self.inner.borrow().num_vars()
    }

    fn constant(&self, value: bool) -> Function<B> {
        let e = self.inner.borrow().constant_edge(value);
        self.lift(e)
    }

    fn var(&self, var: usize) -> Function<B> {
        let mut b = self.inner.borrow_mut();
        let e = b.var_edge(var);
        self.finish(&mut b, e)
    }

    fn gc(&self) -> usize {
        self.inner.borrow_mut().gc()
    }

    fn set_gc_threshold(&self, threshold: usize) {
        self.inner.borrow_mut().set_gc_threshold(threshold);
    }

    fn gc_threshold(&self) -> usize {
        self.inner.borrow().gc_threshold()
    }

    fn live_nodes(&self) -> usize {
        self.inner.borrow().live_nodes()
    }

    fn external_roots(&self) -> usize {
        self.inner.borrow().root_registry().len()
    }

    fn reorder(&self) -> Option<usize> {
        self.inner.borrow_mut().try_sift()
    }

    fn try_reorder(&self, budget: &mut OpBudget) -> Option<Result<usize, OpAbort>> {
        self.inner.borrow_mut().sift_bounded(budget)
    }

    fn reorder_with(&self, strategy: DvoStrategy) -> Option<usize> {
        self.inner
            .borrow_mut()
            .reorder_with(strategy, &mut OpBudget::unlimited())
            .map(|r| r.unwrap_or_else(|_| unreachable!("unlimited budget cannot abort")))
    }

    fn try_reorder_with(
        &self,
        strategy: DvoStrategy,
        budget: &mut OpBudget,
    ) -> Option<Result<usize, OpAbort>> {
        self.inner.borrow_mut().reorder_with(strategy, budget)
    }

    fn set_reorder_policy(&self, policy: Option<DvoPolicy>) {
        self.inner.borrow_mut().set_reorder_policy(policy);
    }

    fn reorder_policy(&self) -> Option<DvoPolicy> {
        self.inner.borrow().reorder_policy()
    }

    fn set_auto_reorder(&self, threshold: usize) {
        self.inner.borrow_mut().set_auto_reorder(threshold);
    }

    fn reorder_if_needed(&self) -> bool {
        self.inner.borrow_mut().reorder_if_needed()
    }

    fn try_collect(&self, budget: &mut OpBudget) -> Result<bool, OpAbort> {
        let reordered = self.inner.borrow_mut().reorder_if_needed_bounded(budget)?;
        if !reordered {
            self.gc();
        }
        Ok(reordered)
    }

    fn set_order(&self, order: &[usize]) -> bool {
        self.inner.borrow_mut().set_order(order)
    }

    fn shared_node_count(&self, fns: &[Function<B>]) -> usize {
        let edges: Vec<B::Edge> = fns.iter().map(Function::edge).collect();
        self.inner.borrow().shared_node_count_edges(&edges)
    }

    fn to_dot(&self, fns: &[Function<B>], names: &[&str]) -> String {
        let edges: Vec<B::Edge> = fns.iter().map(Function::edge).collect();
        self.inner.borrow().to_dot_edges(&edges, names)
    }

    fn level_profile(&self, fns: &[Function<B>]) -> Option<Vec<usize>> {
        let edges: Vec<B::Edge> = fns.iter().map(Function::edge).collect();
        self.inner.borrow().level_profile_edges(&edges)
    }

    fn variable_order(&self) -> Vec<usize> {
        self.inner.borrow().variable_order()
    }

    fn stats_line(&self) -> String {
        self.inner.borrow().stats_line()
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.inner.borrow().observe()
    }
}

impl<B: RawManager> BooleanFunction for Function<B> {
    type Manager = ManagerRef<B>;

    fn manager(&self) -> ManagerRef<B> {
        ManagerRef {
            inner: Rc::clone(&self.mgr),
        }
    }

    fn apply(&self, op: BoolOp, g: &Self) -> Self {
        let (m, mut b) = self.op_ctx(&[g]);
        let e = {
            let _span = obs::span(obs::Op::Apply);
            b.apply_edge(op, self.edge, g.edge)
        };
        m.finish(&mut b, e)
    }

    fn try_apply(&self, op: BoolOp, g: &Self, budget: &mut OpBudget) -> Result<Self, OpAbort> {
        let (m, mut b) = self.op_ctx(&[g]);
        let r = Self::governed(&mut b, obs::Op::Apply, budget, |b, budget| {
            b.try_apply_edge(op, self.edge, g.edge, budget)
        });
        m.finish_try(&mut b, r)
    }

    fn not(&self) -> Self {
        // Complement edges make negation free; no op boundary needed.
        Function {
            edge: !self.edge,
            slot: self.roots.register(B::edge_bits(!self.edge)),
            roots: self.roots.clone(),
            mgr: Rc::clone(&self.mgr),
        }
    }

    fn ite(&self, g: &Self, h: &Self) -> Self {
        let (m, mut b) = self.op_ctx(&[g, h]);
        let e = {
            let _span = obs::span(obs::Op::Ite);
            b.ite_edge(self.edge, g.edge, h.edge)
        };
        m.finish(&mut b, e)
    }

    fn try_ite(&self, g: &Self, h: &Self, budget: &mut OpBudget) -> Result<Self, OpAbort> {
        let (m, mut b) = self.op_ctx(&[g, h]);
        let r = Self::governed(&mut b, obs::Op::Ite, budget, |b, budget| {
            b.try_ite_edge(self.edge, g.edge, h.edge, budget)
        });
        m.finish_try(&mut b, r)
    }

    fn exists(&self, vars: &[usize]) -> Self {
        let (m, mut b) = self.op_ctx(&[]);
        let e = {
            let _span = obs::span(obs::Op::Exists);
            b.exists_edge(self.edge, vars)
        };
        m.finish(&mut b, e)
    }

    fn try_exists(&self, vars: &[usize], budget: &mut OpBudget) -> Result<Self, OpAbort> {
        let (m, mut b) = self.op_ctx(&[]);
        let r = Self::governed(&mut b, obs::Op::Exists, budget, |b, budget| {
            b.try_exists_edge(self.edge, vars, budget)
        });
        m.finish_try(&mut b, r)
    }

    fn forall(&self, vars: &[usize]) -> Self {
        let (m, mut b) = self.op_ctx(&[]);
        let e = {
            let _span = obs::span(obs::Op::Forall);
            b.forall_edge(self.edge, vars)
        };
        m.finish(&mut b, e)
    }

    fn try_forall(&self, vars: &[usize], budget: &mut OpBudget) -> Result<Self, OpAbort> {
        let (m, mut b) = self.op_ctx(&[]);
        let r = Self::governed(&mut b, obs::Op::Forall, budget, |b, budget| {
            b.try_forall_edge(self.edge, vars, budget)
        });
        m.finish_try(&mut b, r)
    }

    fn and_exists(&self, g: &Self, vars: &[usize]) -> Self {
        let (m, mut b) = self.op_ctx(&[g]);
        let e = {
            let _span = obs::span(obs::Op::AndExists);
            b.and_exists_edge(self.edge, g.edge, vars)
        };
        m.finish(&mut b, e)
    }

    fn try_and_exists(
        &self,
        g: &Self,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Self, OpAbort> {
        let (m, mut b) = self.op_ctx(&[g]);
        let r = Self::governed(&mut b, obs::Op::AndExists, budget, |b, budget| {
            b.try_and_exists_edge(self.edge, g.edge, vars, budget)
        });
        m.finish_try(&mut b, r)
    }

    fn restrict(&self, var: usize, value: bool) -> Self {
        let (m, mut b) = self.op_ctx(&[]);
        let e = {
            let _span = obs::span(obs::Op::Restrict);
            b.restrict_edge(self.edge, var, value)
        };
        m.finish(&mut b, e)
    }

    fn compose(&self, var: usize, g: &Self) -> Self {
        let (m, mut b) = self.op_ctx(&[g]);
        let e = {
            let _span = obs::span(obs::Op::Compose);
            b.compose_edge(self.edge, var, g.edge)
        };
        m.finish(&mut b, e)
    }

    fn try_compose(&self, var: usize, g: &Self, budget: &mut OpBudget) -> Result<Self, OpAbort> {
        let (m, mut b) = self.op_ctx(&[g]);
        let r = Self::governed(&mut b, obs::Op::Compose, budget, |b, budget| {
            b.try_compose_edge(self.edge, var, g.edge, budget)
        });
        m.finish_try(&mut b, r)
    }

    fn vector_compose(&self, subs: &[Option<Self>]) -> Self {
        let edges: Vec<Option<B::Edge>> = subs
            .iter()
            .map(|s| s.as_ref().map(Function::edge))
            .collect();
        let (m, mut b) = self.op_ctx(&[]);
        let e = {
            let _span = obs::span(obs::Op::VectorCompose);
            b.vector_compose_edge(self.edge, &edges)
        };
        m.finish(&mut b, e)
    }

    fn cofactors(&self, var: usize) -> (Self, Self) {
        let (m, mut b) = self.op_ctx(&[]);
        // Both restrictions complete before the shared op boundary: no
        // collection can run between them, so the first raw edge stays
        // valid while the second is computed.
        let hi = b.restrict_edge(self.edge, var, true);
        let lo = b.restrict_edge(self.edge, var, false);
        let hi = Function::register(b.root_registry(), hi, Rc::clone(&self.mgr));
        let lo = m.finish(&mut b, lo);
        (hi, lo)
    }

    fn eval(&self, assignment: &[bool]) -> bool {
        self.mgr.borrow().eval_edge(self.edge, assignment)
    }

    fn sat_count(&self) -> u128 {
        let _span = obs::span(obs::Op::SatCount);
        self.mgr.borrow().sat_count_edge(self.edge)
    }

    fn sat_count_checked(&self) -> Option<u128> {
        self.mgr.borrow().sat_count_checked_edge(self.edge)
    }

    fn try_sat_count(&self, budget: &mut OpBudget) -> Result<u128, OpAbort> {
        // Counting is read-only (shared borrow), so the govern-accounting
        // hook — which needs the backend mutably — is skipped here; the
        // span and abort event still fire.
        let _span = obs::span(obs::Op::SatCount);
        let r = self.mgr.borrow().try_sat_count_edge(self.edge, budget);
        if let Some(reason) = r.as_ref().err().copied() {
            obs::abort_event(reason);
        }
        r
    }

    fn sat_count_over(&self, n_vars: usize) -> Option<u128> {
        self.mgr.borrow_mut().sat_count_over_edge(self.edge, n_vars)
    }

    fn try_sat_count_over(
        &self,
        n_vars: usize,
        budget: &mut OpBudget,
    ) -> Result<Option<u128>, OpAbort> {
        let _span = obs::span(obs::Op::SatCount);
        let r = self
            .mgr
            .borrow_mut()
            .try_sat_count_over_edge(self.edge, n_vars, budget);
        if let Some(reason) = r.as_ref().err().copied() {
            obs::abort_event(reason);
        }
        r
    }

    fn any_sat(&self) -> Option<Vec<bool>> {
        self.mgr.borrow().any_sat_edge(self.edge)
    }

    fn all_sat(&self, limit: usize) -> Vec<Vec<bool>> {
        self.mgr.borrow().all_sat_edge(self.edge, limit)
    }

    fn node_count(&self) -> usize {
        self.mgr.borrow().node_count_edge(self.edge)
    }

    fn support(&self) -> Vec<usize> {
        self.mgr.borrow_mut().support_edge(self.edge)
    }

    fn is_true(&self) -> bool {
        self.edge == self.mgr.borrow().constant_edge(true)
    }

    fn is_false(&self) -> bool {
        self.edge == self.mgr.borrow().constant_edge(false)
    }
}

impl<B: RawManager> std::ops::Not for &Function<B> {
    type Output = Function<B>;

    fn not(self) -> Function<B> {
        BooleanFunction::not(self)
    }
}

impl<B: RawManager> std::ops::BitAnd for &Function<B> {
    type Output = Function<B>;

    fn bitand(self, rhs: Self) -> Function<B> {
        self.and(rhs)
    }
}

impl<B: RawManager> std::ops::BitOr for &Function<B> {
    type Output = Function<B>;

    fn bitor(self, rhs: Self) -> Function<B> {
        self.or(rhs)
    }
}

impl<B: RawManager> std::ops::BitXor for &Function<B> {
    type Output = Function<B>;

    fn bitxor(self, rhs: Self) -> Function<B> {
        self.xor(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 6-variable truth-table backend: the minimal [`RawManager`]
    /// implementation, doubling as the in-crate test double for the whole
    /// generic layer (the real backends are exercised by the workspace
    /// conformance suite).
    #[derive(Debug, Default)]
    struct TtBackend {
        roots: RootSet,
        gc_threshold: usize,
    }

    const N: usize = 6;

    /// An edge is the function's 64-row truth table; row `m` holds the
    /// value under the assignment with variable `v` = bit `v` of `m`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Tt(u64);

    impl std::ops::Not for Tt {
        type Output = Tt;
        fn not(self) -> Tt {
            Tt(!self.0)
        }
    }

    fn var_table(v: usize) -> u64 {
        let mut w = 0u64;
        for m in 0..64u64 {
            if (m >> v) & 1 == 1 {
                w |= 1 << m;
            }
        }
        w
    }

    fn restrict_table(t: u64, var: usize, value: bool) -> u64 {
        let vt = var_table(var);
        let keep = if value { t & vt } else { t & !vt };
        // Mirror the kept half onto the other polarity of `var`.
        let stride = 1u64 << var;
        if value {
            keep | (keep >> stride)
        } else {
            keep | (keep << stride)
        }
    }

    impl RawManager for TtBackend {
        type Edge = Tt;

        fn with_vars(num_vars: usize) -> Self {
            assert_eq!(num_vars, N, "test backend is fixed at 6 variables");
            TtBackend::default()
        }

        fn num_vars(&self) -> usize {
            N
        }

        fn root_registry(&self) -> &RootSet {
            &self.roots
        }

        fn edge_bits(e: Tt) -> u64 {
            e.0
        }

        fn constant_edge(&self, value: bool) -> Tt {
            Tt(if value { !0 } else { 0 })
        }

        fn var_edge(&mut self, var: usize) -> Tt {
            assert!(var < N);
            Tt(var_table(var))
        }

        fn apply_edge(&mut self, op: BoolOp, f: Tt, g: Tt) -> Tt {
            let mut out = 0u64;
            for m in 0..64 {
                if op.eval((f.0 >> m) & 1 == 1, (g.0 >> m) & 1 == 1) {
                    out |= 1 << m;
                }
            }
            Tt(out)
        }

        fn ite_edge(&mut self, f: Tt, g: Tt, h: Tt) -> Tt {
            Tt((f.0 & g.0) | (!f.0 & h.0))
        }

        fn exists_edge(&mut self, f: Tt, vars: &[usize]) -> Tt {
            let mut t = f.0;
            for &v in vars {
                t = restrict_table(t, v, true) | restrict_table(t, v, false);
            }
            Tt(t)
        }

        fn forall_edge(&mut self, f: Tt, vars: &[usize]) -> Tt {
            let mut t = f.0;
            for &v in vars {
                t = restrict_table(t, v, true) & restrict_table(t, v, false);
            }
            Tt(t)
        }

        fn and_exists_edge(&mut self, f: Tt, g: Tt, vars: &[usize]) -> Tt {
            self.exists_edge(Tt(f.0 & g.0), vars)
        }

        // The governed variants poll the budget once up front: truth-table
        // ops are O(1)-ish, so a single checkpoint per call is both the
        // natural granularity and enough for the generic-layer tests.
        fn try_apply_edge(
            &mut self,
            op: BoolOp,
            f: Tt,
            g: Tt,
            budget: &mut OpBudget,
        ) -> Result<Tt, OpAbort> {
            budget.checkpoint()?;
            Ok(self.apply_edge(op, f, g))
        }

        fn try_ite_edge(
            &mut self,
            f: Tt,
            g: Tt,
            h: Tt,
            budget: &mut OpBudget,
        ) -> Result<Tt, OpAbort> {
            budget.checkpoint()?;
            Ok(self.ite_edge(f, g, h))
        }

        fn try_exists_edge(
            &mut self,
            f: Tt,
            vars: &[usize],
            budget: &mut OpBudget,
        ) -> Result<Tt, OpAbort> {
            budget.checkpoint()?;
            Ok(self.exists_edge(f, vars))
        }

        fn try_forall_edge(
            &mut self,
            f: Tt,
            vars: &[usize],
            budget: &mut OpBudget,
        ) -> Result<Tt, OpAbort> {
            budget.checkpoint()?;
            Ok(self.forall_edge(f, vars))
        }

        fn try_and_exists_edge(
            &mut self,
            f: Tt,
            g: Tt,
            vars: &[usize],
            budget: &mut OpBudget,
        ) -> Result<Tt, OpAbort> {
            budget.checkpoint()?;
            Ok(self.and_exists_edge(f, g, vars))
        }

        fn try_compose_edge(
            &mut self,
            f: Tt,
            var: usize,
            g: Tt,
            budget: &mut OpBudget,
        ) -> Result<Tt, OpAbort> {
            budget.checkpoint()?;
            Ok(self.compose_edge(f, var, g))
        }

        fn restrict_edge(&mut self, f: Tt, var: usize, value: bool) -> Tt {
            Tt(restrict_table(f.0, var, value))
        }

        fn compose_edge(&mut self, f: Tt, var: usize, g: Tt) -> Tt {
            let hi = restrict_table(f.0, var, true);
            let lo = restrict_table(f.0, var, false);
            Tt((g.0 & hi) | (!g.0 & lo))
        }

        fn vector_compose_edge(&mut self, f: Tt, subs: &[Option<Tt>]) -> Tt {
            // Simultaneous: evaluate row-by-row against the substituted
            // inputs.
            let mut out = 0u64;
            for m in 0..64u64 {
                let mut row = 0usize;
                for v in 0..N {
                    let bit = match subs.get(v).copied().flatten() {
                        Some(g) => (g.0 >> m) & 1 == 1,
                        None => (m >> v) & 1 == 1,
                    };
                    if bit {
                        row |= 1 << v;
                    }
                }
                if (f.0 >> row) & 1 == 1 {
                    out |= 1 << m;
                }
            }
            Tt(out)
        }

        fn eval_edge(&self, f: Tt, assignment: &[bool]) -> bool {
            let mut m = 0usize;
            for (v, &bit) in assignment.iter().enumerate().take(N) {
                if bit {
                    m |= 1 << v;
                }
            }
            (f.0 >> m) & 1 == 1
        }

        fn sat_count_edge(&self, f: Tt) -> u128 {
            u128::from(f.0.count_ones())
        }

        fn sat_count_checked_edge(&self, f: Tt) -> Option<u128> {
            Some(self.sat_count_edge(f))
        }

        fn try_sat_count_edge(&self, f: Tt, budget: &mut OpBudget) -> Result<u128, OpAbort> {
            budget.checkpoint()?;
            Ok(self.sat_count_edge(f))
        }

        fn any_sat_edge(&self, f: Tt) -> Option<Vec<bool>> {
            if f.0 == 0 {
                return None;
            }
            let m = f.0.trailing_zeros() as usize;
            Some((0..N).map(|v| (m >> v) & 1 == 1).collect())
        }

        fn all_sat_edge(&self, f: Tt, limit: usize) -> Vec<Vec<bool>> {
            (0..64usize)
                .filter(|m| (f.0 >> m) & 1 == 1)
                .take(limit)
                .map(|m| (0..N).map(|v| (m >> v) & 1 == 1).collect())
                .collect()
        }

        fn node_count_edge(&self, f: Tt) -> usize {
            usize::from(f.0 != 0 && f.0 != !0)
        }

        fn shared_node_count_edges(&self, roots: &[Tt]) -> usize {
            roots.iter().map(|&e| self.node_count_edge(e)).sum()
        }

        fn support_edge(&mut self, f: Tt) -> Vec<usize> {
            (0..N)
                .filter(|&v| restrict_table(f.0, v, true) != restrict_table(f.0, v, false))
                .collect()
        }

        fn to_dot_edges(&self, _roots: &[Tt], _names: &[&str]) -> String {
            String::new()
        }

        fn after_op(&mut self) {}

        fn gc(&mut self) -> usize {
            0
        }

        fn set_gc_threshold(&mut self, threshold: usize) {
            self.gc_threshold = threshold;
        }

        fn gc_threshold(&self) -> usize {
            self.gc_threshold
        }

        fn live_nodes(&self) -> usize {
            0
        }

        fn try_sift(&mut self) -> Option<usize> {
            None
        }

        fn sift_bounded(&mut self, _budget: &mut OpBudget) -> Option<Result<usize, OpAbort>> {
            None
        }

        fn variable_order(&self) -> Vec<usize> {
            (0..N).collect()
        }

        fn stats_line(&self) -> String {
            "tt backend".to_string()
        }
    }

    type M = ManagerRef<TtBackend>;

    #[test]
    fn operators_and_named_ops_agree_with_tables() {
        let mgr = M::with_vars(N);
        let a = mgr.var(0);
        let b = mgr.var(1);
        assert_eq!((&a & &b).edge().0, var_table(0) & var_table(1));
        assert_eq!((&a | &b).edge().0, var_table(0) | var_table(1));
        assert_eq!((&a ^ &b).edge().0, var_table(0) ^ var_table(1));
        assert_eq!((!&a).edge().0, !var_table(0));
        assert_eq!(a.xnor(&b).edge().0, !(var_table(0) ^ var_table(1)));
        assert_eq!(a.imp(&b).edge().0, !var_table(0) | var_table(1));
        assert_eq!(a.nand(&b), !&(&a & &b));
        assert_eq!(a.nor(&b), !&(&a | &b));
    }

    #[test]
    fn quantification_composition_and_queries() {
        let mgr = M::with_vars(N);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let f = &(&a & &b) | &c;
        assert_eq!(f.exists(&[0]).edge().0, var_table(1) | var_table(2));
        assert_eq!(f.forall(&[2]).edge().0, var_table(0) & var_table(1));
        assert_eq!(
            a.and_exists(&b, &[1]),
            (&a & &b).exists(&[1]),
            "fused = materialized"
        );
        let (hi, lo) = f.cofactors(0);
        assert_eq!(hi.edge().0, var_table(1) | var_table(2));
        assert_eq!(lo, c);
        assert_eq!(f.compose(0, &c), f.vector_compose(&[Some(c.clone())]));
        assert_eq!(f.support(), vec![0, 1, 2]);
        assert_eq!(
            f.sat_count(),
            (var_table(0) & var_table(1) | var_table(2))
                .count_ones()
                .into()
        );
        let m = f.any_sat().expect("satisfiable");
        assert!(f.eval(&m));
        assert_eq!(f.all_sat(7).len(), 7);
        assert!(mgr.constant(true).is_true());
        assert!(mgr.constant(false).is_false());
        assert!(!f.is_constant());
        assert_eq!(mgr.nvar(3), !&mgr.var(3));
    }

    #[test]
    fn handles_track_the_root_registry() {
        let mgr = M::with_vars(N);
        assert_eq!(mgr.external_roots(), 0);
        let a = mgr.var(0);
        let b = a.clone();
        assert_eq!(mgr.external_roots(), 1, "clones share one slot");
        let c = !&a;
        assert_eq!(mgr.external_roots(), 2);
        drop(a);
        assert_eq!(mgr.external_roots(), 2, "clone keeps the slot");
        drop(b);
        drop(c);
        assert_eq!(mgr.external_roots(), 0);
    }

    #[test]
    fn handles_of_different_managers_never_compare_equal() {
        let m1 = M::with_vars(N);
        let m2 = M::with_vars(N);
        // Identical functions, identical edge bits — but distinct
        // backends, so equality must not hold.
        assert_ne!(m1.var(0), m2.var(0));
        assert_ne!(m1.constant(true), m2.constant(true));
        assert_eq!(m1.var(0), m1.var(0), "same manager still compares");
    }

    #[test]
    fn manager_round_trips_through_handles() {
        let mgr = M::with_vars(N);
        let f = mgr.var(4);
        let m2 = f.manager();
        assert_eq!(m2.num_vars(), N);
        let g = m2.var(4);
        assert_eq!(f, g, "same backend behind both references");
        assert!(mgr.reorder().is_none());
        assert!(!mgr.reorder_if_needed());
        // The DVO defaults on a reorder-less backend: everything is a
        // polite no-op.
        assert!(mgr.reorder_with(DvoStrategy::Full).is_none());
        assert!(mgr
            .try_reorder_with(DvoStrategy::Pair, &mut OpBudget::unlimited())
            .is_none());
        mgr.set_reorder_policy(Some("full:growth2".parse().unwrap()));
        assert!(mgr.reorder_policy().is_none(), "backend ignores policies");
        assert!(!mgr.set_order(&[5, 4, 3, 2, 1, 0]));
        assert_eq!(
            mgr.try_collect(&mut OpBudget::unlimited()),
            Ok(false),
            "no reorder support: try_collect degrades to plain gc"
        );
        mgr.collect();
        mgr.set_gc_threshold(7);
        assert_eq!(mgr.gc_threshold(), 7);
        assert_eq!(mgr.variable_order(), (0..N).collect::<Vec<_>>());
        let e = f.edge();
        let lifted = mgr.lift(e);
        assert_eq!(lifted, f);
    }
}

//! Shared infrastructure for the decision-diagram packages in this workspace.
//!
//! The DATE 2014 BBDD paper (§IV-A3, *Memory Management*) describes three
//! implementation ingredients that are independent of the diagram type:
//!
//! 1. a **Cantor-pairing hash** family, `C(i,j) = ½(i+j)(i+j+1) + i`, nested
//!    for wider tuples and reduced modulo a large prime before the final
//!    table-size modulo ([`cantor`]);
//! 2. an **adaptive hash table** used as the *unique table*, which resizes
//!    on load and can re-arrange its hash function when collision
//!    statistics degrade ([`table`]). Two implementations exist: the
//!    cache-friendly open-addressed [`table::OpenTable`] (default) and the
//!    seed's chained [`table::BucketTable`] (the `chained_tables` ablation
//!    feature); [`table::UniqueTable`] aliases the selected one;
//! 3. an **overwrite-on-collision cache** used as the *computed table*,
//!    2-way set-associative with an age-based victim bit ([`cache`]).
//!
//! Both the BBDD package (`bbdd` crate) and the ROBDD baseline (`robdd`
//! crate) are built on these primitives, so the Table-I runtime comparison
//! measures the *algorithms*, not incidental infrastructure differences.
//!
//! On top of the storage primitives, two pieces of shared *operation*
//! infrastructure keep the managers' op suites aligned: the computed-table
//! tag registry ([`optag`]) naming every cached operation (apply, ite,
//! quantification, composition), and the n-ary operator tables ([`nary`])
//! backing the generic n-ary `apply`.
//!
//! The [`roots`] module holds the shared external-root registry behind the
//! managers' owned function handles (`bbdd::BbddFn` / `robdd::RobddFn`):
//! GC and reordering trace from the registry instead of caller-supplied
//! `roots: &[Edge]` lists, making the forgotten-root bug class
//! unrepresentable.
//!
//! The [`par`] module adds the multi-core primitives the parallel managers
//! (`bbdd::ParBbdd`, `robdd::ParRobdd`) are built from: a sharded
//! concurrent unique table, a lossy lock-free computed cache, an
//! append-only overlay arena and a std-only fork-join helper — all safe
//! Rust (this crate forbids `unsafe`).
//!
//! The [`dvo`] module is the dynamic-variable-ordering engine: pluggable
//! reorder strategies (full/window/pair-aware sifting) over a small
//! [`dvo::ReorderBackend`] contract, plus the adaptive schedules that fire
//! them mid-build at the managers' GC-latch boundaries.
//!
//! The [`obs`] module is the unified observability layer: a cross-backend
//! metrics registry ([`obs::MetricsSnapshot`], filled through
//! [`api::RawManager::observe`]), a bounded trace ring exporting Chrome
//! `trace_event` JSON, and per-op profiling histograms — all zero-cost
//! when disabled.
//!
//! The [`session`] module is the MVCC serving layer built over the same
//! frozen-base / overlay / deterministic-commit design the parallel
//! managers use per operation: immutable `Arc`-shared base snapshots
//! holding a published function library ([`session::SharedBase`]),
//! per-client overlay sessions with budget-based admission control
//! ([`session::Session`]), and epoch-based reclamation
//! ([`session::EpochTracker`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod boolop;
pub mod cache;
pub mod cantor;
pub mod dvo;
pub mod fxhash;
pub mod govern;
pub mod nary;
pub mod obs;
pub mod optag;
pub mod par;
pub mod roots;
pub mod session;
pub mod stats;
pub mod table;

pub use api::{BooleanFunction, Function, FunctionManager, ManagerRef, RawManager};
pub use boolop::{BoolOp, Unary};
pub use cache::{CacheStats, ComputedCache};
pub use cantor::{cantor_pair, CantorHasher, HashArrangement};
pub use dvo::{
    DvoPolicy, DvoState, DvoStrategy, FullSift, PairSift, ReorderBackend, ReorderSchedule,
    ReorderStrategy, SiftParams, WindowSift,
};
pub use fxhash::{FxHashMap, FxHashSet};
pub use govern::{Admission, CancelToken, OpAbort, OpBudget};
pub use nary::NaryOp;
pub use obs::{GovernCounters, Metric, MetricKind, MetricsSnapshot, ProfileSnapshot, TraceEvent};
pub use par::{
    AtomicCache, AtomicCacheStats, OverlayArena, ParConfig, ParStats, ShardStats, ShardedTable,
    TaskPanic,
};
pub use roots::RootSet;
pub use session::{
    CecOutcome, EpochTracker, Library, OverlayFrame, Session, SessionBackend, SessionError,
    SharedBase,
};
pub use stats::TableStats;
pub use table::{BucketTable, OpenTable, UniqueTable, NIL};

//! Unified observability: a cross-backend metrics registry, a structured
//! trace layer, and profiling hooks.
//!
//! Three independent facilities share this module because they share one
//! contract — **zero cost when off**:
//!
//! 1. **Metrics registry** ([`MetricsSnapshot`]): a flat, snapshot/delta-
//!    capable tree of named counters and gauges that every backend fills
//!    through the [`RawManager::observe`](crate::api::RawManager::observe)
//!    seam. Names are stable dotted paths (`cache.hits`, `gc.runs`,
//!    `par.shard_contention`) so formatters, JSON export and tests are
//!    backend-agnostic. Snapshots are pulled from counters the managers
//!    already maintain — taking one costs nothing on any hot path.
//! 2. **Trace layer**: a bounded ring buffer of timestamped spans and
//!    instant events (op begin/end, GC, scheduled sift fire+result,
//!    budget aborts, parallel phase boundaries, per-worker task spans),
//!    exported as Chrome `trace_event` JSON ([`chrome_trace_json`]) so a
//!    governed build+sift+CEC run opens directly in Perfetto. Disabled
//!    (the default), every hook is one relaxed atomic load and a
//!    predicted branch — no allocation, no clock read, no lock.
//! 3. **Profiling hooks**: per-op log2 latency histograms and per-op-tag
//!    cache hit rates ([`profile_snapshot`], [`format_profile`]). Same
//!    enable discipline as tracing.
//!
//! Tracing and profiling are process-global (managers deep in the call
//! graph record without threading a handle through every layer); the
//! metrics registry is per-manager. Both global facilities can also be
//! switched on from the environment (`BBDD_TRACE=1`, `BBDD_PROFILE=1`),
//! which is how CI runs the whole test suite traced.

use crate::govern::OpAbort;
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

// ───────────────────────────── enable state ─────────────────────────────

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static TRACE_STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static PROF_STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Lazily resolve an enable flag: explicit `set_*` wins, otherwise the
/// environment variable decides on first query (set and not `0`/empty ⇒
/// on). After initialization the hot-path cost is one relaxed load.
fn lazy_enabled(state: &AtomicU8, env: &str) -> bool {
    match state.load(Ordering::Relaxed) {
        STATE_OFF => false,
        STATE_ON => true,
        _ => {
            let on = std::env::var_os(env)
                .map(|v| !v.is_empty() && v != *"0")
                .unwrap_or(false);
            state.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Is the trace layer recording? Checked (one relaxed atomic load) at
/// every instrumentation site; resolves `BBDD_TRACE` on first call.
#[inline]
pub fn trace_enabled() -> bool {
    lazy_enabled(&TRACE_STATE, "BBDD_TRACE")
}

/// Is the profiler recording? Checked (one relaxed atomic load) at every
/// instrumentation site; resolves `BBDD_PROFILE` on first call.
#[inline]
pub fn profile_enabled() -> bool {
    lazy_enabled(&PROF_STATE, "BBDD_PROFILE")
}

/// Turn the trace layer on or off (overrides `BBDD_TRACE`).
pub fn set_trace_enabled(on: bool) {
    TRACE_STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Turn the profiler on or off (overrides `BBDD_PROFILE`).
pub fn set_profile_enabled(on: bool) {
    PROF_STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ─────────────────────────────── op names ───────────────────────────────

/// The instrumented operation kinds. One enum shared by the trace layer
/// (span/event names and categories) and the profiler (histogram index),
/// so a Perfetto track and a `--profile` row use the same vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Binary `apply` (any of the 16 two-input Boolean operators).
    Apply,
    /// If-then-else.
    Ite,
    /// Existential quantification over a cube.
    Exists,
    /// Universal quantification over a cube.
    Forall,
    /// Fused and-exists (relational product).
    AndExists,
    /// Cofactor / restrict.
    Restrict,
    /// Single-variable composition.
    Compose,
    /// Simultaneous vector composition.
    VectorCompose,
    /// N-ary apply over an operand list.
    NaryApply,
    /// Model counting.
    SatCount,
    /// Mark-and-sweep garbage collection.
    Gc,
    /// One adjacent-level swap (the reorder primitive).
    Swap,
    /// A variable-reorder pass (manual or scheduled sift).
    Reorder,
    /// Netlist construction (`logicnet::build`).
    BuildNetwork,
    /// Combinational equivalence check (`logicnet::cec`).
    Cec,
    /// One output miter inside a CEC run.
    CecOutput,
    /// The frozen-base parallel phase of a `Par*` operation.
    ParPhase,
    /// The deterministic commit phase of a `Par*` operation.
    ParCommit,
    /// One worker task inside the fork-join pool.
    ParTask,
    /// A budget abort surfaced by a governed `try_*` operation.
    Abort,
    /// Forking a per-client session overlay off a shared base snapshot.
    SessionFork,
    /// The deterministic commit minting a new base snapshot
    /// (`Session::publish`).
    Publish,
    /// One request handled by the serving front door.
    ServeRequest,
}

/// Number of [`Op`] variants (histogram row count).
const OP_COUNT: usize = 23;

/// Every variant, in histogram-index order.
const ALL_OPS: [Op; OP_COUNT] = [
    Op::Apply,
    Op::Ite,
    Op::Exists,
    Op::Forall,
    Op::AndExists,
    Op::Restrict,
    Op::Compose,
    Op::VectorCompose,
    Op::NaryApply,
    Op::SatCount,
    Op::Gc,
    Op::Swap,
    Op::Reorder,
    Op::BuildNetwork,
    Op::Cec,
    Op::CecOutput,
    Op::ParPhase,
    Op::ParCommit,
    Op::ParTask,
    Op::Abort,
    Op::SessionFork,
    Op::Publish,
    Op::ServeRequest,
];

impl Op {
    /// Stable display name (trace event name, `--profile` row label).
    pub fn name(self) -> &'static str {
        match self {
            Op::Apply => "apply",
            Op::Ite => "ite",
            Op::Exists => "exists",
            Op::Forall => "forall",
            Op::AndExists => "and_exists",
            Op::Restrict => "restrict",
            Op::Compose => "compose",
            Op::VectorCompose => "vector_compose",
            Op::NaryApply => "nary_apply",
            Op::SatCount => "sat_count",
            Op::Gc => "gc",
            Op::Swap => "swap",
            Op::Reorder => "reorder",
            Op::BuildNetwork => "build_network",
            Op::Cec => "cec",
            Op::CecOutput => "cec_output",
            Op::ParPhase => "par_phase",
            Op::ParCommit => "par_commit",
            Op::ParTask => "par_task",
            Op::Abort => "abort",
            Op::SessionFork => "session_fork",
            Op::Publish => "publish",
            Op::ServeRequest => "serve_request",
        }
    }

    /// Trace event category (`cat` field — Perfetto track grouping).
    pub fn category(self) -> &'static str {
        match self {
            Op::Gc | Op::Swap | Op::Reorder => "manager",
            Op::BuildNetwork | Op::Cec | Op::CecOutput => "logicnet",
            Op::ParPhase | Op::ParCommit | Op::ParTask => "par",
            Op::Abort => "govern",
            Op::SessionFork | Op::Publish | Op::ServeRequest => "serve",
            _ => "op",
        }
    }

    fn index(self) -> usize {
        ALL_OPS.iter().position(|&o| o == self).unwrap_or(0)
    }
}

// ─────────────────────────── clock + thread ids ─────────────────────────

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide trace epoch (first observability
/// activity). Monotonic; shared by every thread so spans line up.
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
}

/// Small dense id of the calling thread (1-based, assigned on first use).
/// Used as the `tid` of trace events; exposed so tests can filter the
/// shared ring down to their own thread's spans.
pub fn current_tid() -> u32 {
    TID.with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

// ───────────────────────────── trace layer ──────────────────────────────

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph: "B"` in Chrome trace terms).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point-in-time event (`ph: "i"`).
    Instant,
}

/// One entry of the trace ring buffer.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Recording thread (see [`current_tid`]).
    pub tid: u32,
    /// Which operation this event belongs to.
    pub op: Op,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Optional single argument, exported into the event's `args` object.
    pub arg: Option<(&'static str, u64)>,
}

struct Ring {
    buf: Vec<TraceEvent>,
    /// Index of the oldest entry once the buffer has wrapped.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// Default ring capacity: 64k events (~2.5 MB), enough for a full
/// build+sift+CEC run at op granularity before the oldest entries rotate
/// out.
const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

static RING: OnceLock<Mutex<Ring>> = OnceLock::new();

fn ring() -> &'static Mutex<Ring> {
    RING.get_or_init(|| {
        Mutex::new(Ring {
            buf: Vec::new(),
            head: 0,
            capacity: DEFAULT_TRACE_CAPACITY,
            dropped: 0,
        })
    })
}

fn push_event(op: Op, kind: EventKind, arg: Option<(&'static str, u64)>) {
    let ev = TraceEvent {
        ts_ns: now_ns(),
        tid: current_tid(),
        op,
        kind,
        arg,
    };
    ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(ev);
}

/// Discard all buffered trace events (keeps the configured capacity).
pub fn trace_clear() {
    let mut r = ring().lock().unwrap_or_else(PoisonError::into_inner);
    r.buf.clear();
    r.head = 0;
    r.dropped = 0;
}

/// Resize the ring (also clears it). Oldest events rotate out once the
/// new capacity fills.
pub fn trace_set_capacity(capacity: usize) {
    let mut r = ring().lock().unwrap_or_else(PoisonError::into_inner);
    r.buf = Vec::new();
    r.head = 0;
    r.dropped = 0;
    r.capacity = capacity.max(1);
}

/// Snapshot the buffered events, oldest first. Recording continues.
pub fn trace_events() -> Vec<TraceEvent> {
    ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .snapshot()
}

/// How many events were overwritten because the ring wrapped.
pub fn trace_dropped() -> u64 {
    ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .dropped
}

/// Record a point-in-time event (no-op unless tracing is enabled).
#[inline]
pub fn event(op: Op, arg: Option<(&'static str, u64)>) {
    if trace_enabled() {
        push_event(op, EventKind::Instant, arg);
    }
}

/// Record a budget-abort instant event tagged with the abort reason
/// (no-op unless tracing is enabled).
#[inline]
pub fn abort_event(reason: OpAbort) {
    if trace_enabled() {
        let code = match reason {
            OpAbort::NodeBudget => 1,
            OpAbort::Deadline => 2,
            OpAbort::Cancelled => 3,
        };
        push_event(Op::Abort, EventKind::Instant, Some(("reason", code)));
    }
}

/// RAII span: records a begin event on creation and the matching end
/// event on drop (so an early return — e.g. a budget abort unwinding
/// through `?` — still closes the span), and feeds the op's latency
/// histogram when profiling is on. When both facilities are off,
/// construction is two relaxed loads and drop is two predicted branches:
/// no clock read, no allocation.
#[must_use = "a span records its end when dropped; bind it to a local"]
#[derive(Debug)]
pub struct SpanGuard {
    op: Op,
    start: Option<Instant>,
    traced: bool,
    arg: Option<(&'static str, u64)>,
}

impl SpanGuard {
    /// Attach one `(label, value)` argument, exported on the end event.
    pub fn set_arg(&mut self, label: &'static str, value: u64) {
        if self.traced {
            self.arg = Some((label, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.traced {
            push_event(self.op, EventKind::End, self.arg);
        }
        if let Some(t0) = self.start {
            if profile_enabled() {
                record_op_ns(self.op, t0.elapsed().as_nanos() as u64);
            }
        }
    }
}

/// Open a traced + profiled span for `op`. See [`SpanGuard`].
#[inline]
pub fn span(op: Op) -> SpanGuard {
    let traced = trace_enabled();
    let profiled = profile_enabled();
    if !traced && !profiled {
        return SpanGuard {
            op,
            start: None,
            traced: false,
            arg: None,
        };
    }
    if traced {
        push_event(op, EventKind::Begin, None);
    }
    SpanGuard {
        op,
        start: Some(Instant::now()),
        traced,
        arg: None,
    }
}

/// Start a profile-only timer: `Some(now)` when profiling is enabled,
/// `None` (free) otherwise. Pair with [`prof_record`]. Used on sites too
/// hot or too numerous for trace events (e.g. every adjacent-level swap).
#[inline]
pub fn prof_timer() -> Option<Instant> {
    if profile_enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Close a [`prof_timer`] into `op`'s latency histogram (no-op on `None`).
#[inline]
pub fn prof_record(op: Op, timer: Option<Instant>) {
    if let Some(t0) = timer {
        record_op_ns(op, t0.elapsed().as_nanos() as u64);
    }
}

/// Serialize the buffered events as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form), loadable in Perfetto or
/// `chrome://tracing`. Timestamps are microseconds from the trace epoch.
pub fn chrome_trace_json() -> String {
    let events = trace_events();
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match ev.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        let us = ev.ts_ns as f64 / 1000.0;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
            ev.op.name(),
            ev.op.category(),
            ph,
            us,
            ev.tid
        ));
        if ev.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if let Some((label, value)) = ev.arg {
            out.push_str(&format!(",\"args\":{{\"{label}\":{value}}}"));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

// ─────────────────────────────── profiler ───────────────────────────────

/// Log2 latency buckets: bucket `i` holds durations in `[2^i, 2^(i+1))`
/// nanoseconds; 40 buckets cover up to ~18 minutes.
const HIST_BUCKETS: usize = 40;

/// Cache-tag classes for per-tag hit-rate accounting (the 16 apply tags
/// collapse into one class; structured-op tags keep their own).
const TAG_SLOTS: usize = 7;

fn tag_slot(tag: u32) -> usize {
    use crate::optag;
    match tag {
        t if t < optag::ITE => 0,
        optag::ITE => 1,
        optag::EXISTS => 2,
        optag::FORALL => 3,
        optag::AND_EXISTS => 4,
        optag::COMPOSE => 5,
        _ => 6,
    }
}

fn tag_slot_name(slot: usize) -> &'static str {
    match slot {
        0 => "apply",
        1 => "ite",
        2 => "exists",
        3 => "forall",
        4 => "and_exists",
        5 => "compose",
        _ => "other",
    }
}

struct ProfStore {
    /// `OP_COUNT × HIST_BUCKETS` log2 latency histogram.
    hist: Vec<AtomicU64>,
    /// Per-op call count and total nanoseconds.
    count: Vec<AtomicU64>,
    total_ns: Vec<AtomicU64>,
    /// Per-tag-class cache lookups and hits.
    cache_lookups: Vec<AtomicU64>,
    cache_hits: Vec<AtomicU64>,
}

static PROF: OnceLock<ProfStore> = OnceLock::new();

fn prof() -> &'static ProfStore {
    PROF.get_or_init(|| ProfStore {
        hist: (0..OP_COUNT * HIST_BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect(),
        count: (0..OP_COUNT).map(|_| AtomicU64::new(0)).collect(),
        total_ns: (0..OP_COUNT).map(|_| AtomicU64::new(0)).collect(),
        cache_lookups: (0..TAG_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        cache_hits: (0..TAG_SLOTS).map(|_| AtomicU64::new(0)).collect(),
    })
}

fn record_op_ns(op: Op, ns: u64) {
    let p = prof();
    let i = op.index();
    let bucket = (63 - (ns | 1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
    p.hist[i * HIST_BUCKETS + bucket].fetch_add(1, Ordering::Relaxed);
    p.count[i].fetch_add(1, Ordering::Relaxed);
    p.total_ns[i].fetch_add(ns, Ordering::Relaxed);
}

/// Computed-cache access hook: when profiling is enabled, counts the
/// lookup (and hit) against the op-tag's class. Called by every cache
/// implementation; one relaxed load and a predicted branch when off.
#[inline]
pub fn cache_access(tag: u32, hit: bool) {
    if !profile_enabled() {
        return;
    }
    let p = prof();
    let slot = tag_slot(tag);
    p.cache_lookups[slot].fetch_add(1, Ordering::Relaxed);
    if hit {
        p.cache_hits[slot].fetch_add(1, Ordering::Relaxed);
    }
}

/// One op's row of a [`ProfileSnapshot`].
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Which operation.
    pub op: Op,
    /// Number of recorded calls.
    pub count: u64,
    /// Sum of recorded latencies, nanoseconds.
    pub total_ns: u64,
    /// Log2 latency histogram — `buckets[i]` counts calls in
    /// `[2^i, 2^(i+1))` ns.
    pub buckets: Vec<u64>,
}

impl OpProfile {
    /// The latency below which `fraction` of recorded calls fall,
    /// resolved to the upper edge of the containing log2 bucket
    /// (nanoseconds). `None` when nothing was recorded.
    pub fn quantile_ns(&self, fraction: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let threshold = (self.count as f64 * fraction).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= threshold {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        Some(1u64 << HIST_BUCKETS)
    }
}

/// Per-tag-class cache hit-rate row of a [`ProfileSnapshot`].
#[derive(Debug, Clone)]
pub struct CacheTagProfile {
    /// Tag-class label (`apply`, `ite`, ...).
    pub name: &'static str,
    /// Lookups recorded while profiling was on.
    pub lookups: u64,
    /// Hits among those lookups.
    pub hits: u64,
}

/// A point-in-time copy of the profiler's histograms and cache counters.
#[derive(Debug, Clone)]
pub struct ProfileSnapshot {
    /// Per-op latency rows (only ops with at least one recorded call).
    pub ops: Vec<OpProfile>,
    /// Per-tag-class cache hit rates (only classes with lookups).
    pub cache: Vec<CacheTagProfile>,
}

/// Copy the profiler state out (recording continues).
pub fn profile_snapshot() -> ProfileSnapshot {
    let p = prof();
    let mut ops = Vec::new();
    for (i, &op) in ALL_OPS.iter().enumerate() {
        let count = p.count[i].load(Ordering::Relaxed);
        if count == 0 {
            continue;
        }
        ops.push(OpProfile {
            op,
            count,
            total_ns: p.total_ns[i].load(Ordering::Relaxed),
            buckets: (0..HIST_BUCKETS)
                .map(|b| p.hist[i * HIST_BUCKETS + b].load(Ordering::Relaxed))
                .collect(),
        });
    }
    let mut cache = Vec::new();
    for slot in 0..TAG_SLOTS {
        let lookups = p.cache_lookups[slot].load(Ordering::Relaxed);
        if lookups == 0 {
            continue;
        }
        cache.push(CacheTagProfile {
            name: tag_slot_name(slot),
            lookups,
            hits: p.cache_hits[slot].load(Ordering::Relaxed),
        });
    }
    ProfileSnapshot { ops, cache }
}

/// Zero every histogram and cache counter.
pub fn profile_reset() {
    let p = prof();
    for a in p
        .hist
        .iter()
        .chain(&p.count)
        .chain(&p.total_ns)
        .chain(&p.cache_lookups)
        .chain(&p.cache_hits)
    {
        a.store(0, Ordering::Relaxed);
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Render a profile snapshot as the human `--profile` report: one row per
/// op (calls, total, mean, p50/p99 from the log2 histogram) plus per-tag
/// cache hit rates. This is the formatter `sift_anatomy` and the CLI
/// share.
pub fn format_profile(s: &ProfileSnapshot) -> String {
    let mut out = String::new();
    out.push_str("profile: per-op latency (log2 histogram quantiles)\n");
    if s.ops.is_empty() {
        out.push_str("  (no samples — was profiling enabled?)\n");
    }
    for row in &s.ops {
        let mean = row.total_ns / row.count.max(1);
        let p50 = row.quantile_ns(0.50).unwrap_or(0);
        let p99 = row.quantile_ns(0.99).unwrap_or(0);
        out.push_str(&format!(
            "  {:<14} calls {:>9}  total {:>9}  mean {:>9}  p50 <{:>9}  p99 <{:>9}\n",
            row.op.name(),
            row.count,
            fmt_ns(row.total_ns),
            fmt_ns(mean),
            fmt_ns(p50),
            fmt_ns(p99),
        ));
    }
    if !s.cache.is_empty() {
        out.push_str("profile: cache hit rate by op tag\n");
        for c in &s.cache {
            out.push_str(&format!(
                "  {:<14} {:>9} lookups  {:>6.2}% hits\n",
                c.name,
                c.lookups,
                100.0 * c.hits as f64 / c.lookups.max(1) as f64
            ));
        }
    }
    out
}

// ─────────────────────────── metrics registry ───────────────────────────

/// Whether a metric accumulates (counter) or reads a current level
/// (gauge). Deltas subtract counters and pass gauges through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing over a manager's lifetime.
    Counter,
    /// A current level (live nodes, shard occupancy); not monotonic.
    Gauge,
}

/// One named value of a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metric {
    /// Stable dotted path, e.g. `cache.hits`.
    pub name: &'static str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// The value at snapshot time.
    pub value: u64,
}

/// A uniform, backend-agnostic snapshot of a manager's counters: the
/// registry every backend fills through
/// [`RawManager::observe`](crate::api::RawManager::observe).
///
/// Metric names are stable dotted paths grouped into sections —
/// `nodes.*`, `ops.*`, `cache.*`, `table.*`, `gc.*`, `roots.*`, `dvo.*`,
/// `govern.*`, and (parallel backends only) `par.*` — so one formatter,
/// one JSON encoder and one test suite cover all backends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    backend: &'static str,
    entries: Vec<Metric>,
}

impl MetricsSnapshot {
    /// An empty snapshot labeled with the producing backend's name.
    pub fn new(backend: &'static str) -> Self {
        MetricsSnapshot {
            backend,
            entries: Vec::new(),
        }
    }

    /// Which backend produced this snapshot (`bbdd`, `par-robdd`, ...).
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// Append a counter.
    pub fn counter(&mut self, name: &'static str, value: u64) {
        self.entries.push(Metric {
            name,
            kind: MetricKind::Counter,
            value,
        });
    }

    /// Append a gauge.
    pub fn gauge(&mut self, name: &'static str, value: u64) {
        self.entries.push(Metric {
            name,
            kind: MetricKind::Gauge,
            value,
        });
    }

    /// All metrics, in registration order.
    pub fn entries(&self) -> &[Metric] {
        &self.entries
    }

    /// Look a metric up by its dotted name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }

    /// The change since `earlier`: counters subtract (saturating, and a
    /// metric absent earlier counts from zero); gauges keep their current
    /// value. `self` should be the later snapshot of the same manager.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new(self.backend);
        for m in &self.entries {
            let value = match m.kind {
                MetricKind::Counter => m.value.saturating_sub(earlier.get(m.name).unwrap_or(0)),
                MetricKind::Gauge => m.value,
            };
            out.entries.push(Metric { value, ..*m });
        }
        out
    }

    /// Render as the human `--stats`/`--metrics` report: one line per
    /// section, `name=value` pairs, hit rates appended where derivable.
    pub fn format(&self) -> String {
        let mut out = String::new();
        let mut section_start = 0;
        while section_start < self.entries.len() {
            let section = section_of(self.entries[section_start].name);
            let mut line = format!("[{}] {}:", self.backend, section);
            let mut end = section_start;
            while end < self.entries.len() && section_of(self.entries[end].name) == section {
                let m = &self.entries[end];
                let short = m.name.split_once('.').map_or(m.name, |(_, s)| s);
                line.push_str(&format!(" {short}={}", m.value));
                end += 1;
            }
            if let (Some(hits), Some(lookups)) = (
                self.get(&format!("{section}.hits")),
                self.get(&format!("{section}.lookups")),
            ) {
                if lookups > 0 {
                    line.push_str(&format!(
                        " (hit rate {:.2}%)",
                        100.0 * hits as f64 / lookups as f64
                    ));
                }
            }
            out.push_str(&line);
            out.push('\n');
            section_start = end;
        }
        out
    }

    /// Serialize as nested JSON: sections become objects, e.g.
    /// `{"backend":"bbdd","cache":{"hits":12,...},...}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 24 + 32);
        out.push_str(&format!("{{\"backend\":\"{}\"", self.backend));
        let mut i = 0;
        while i < self.entries.len() {
            let section = section_of(self.entries[i].name);
            out.push_str(&format!(",\"{section}\":{{"));
            let mut first = true;
            while i < self.entries.len() && section_of(self.entries[i].name) == section {
                let m = &self.entries[i];
                let short = m.name.split_once('.').map_or(m.name, |(_, s)| s);
                if !first {
                    out.push(',');
                }
                out.push_str(&format!("\"{short}\":{}", m.value));
                first = false;
                i += 1;
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

fn section_of(name: &str) -> &str {
    name.split_once('.').map_or(name, |(s, _)| s)
}

// ───────────────────────── govern counter helper ────────────────────────

/// Per-manager accounting of governed (`try_*`) operations: checkpoint
/// spend and abort outcomes, bucketed by reason. The generic API layer
/// feeds this through
/// [`RawManager::note_governed`](crate::api::RawManager::note_governed);
/// backends embed one and surface it in their [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernCounters {
    /// Governed operations observed (completed or aborted).
    pub ops: u64,
    /// Budget checkpoints consumed across those operations (≈ nodes
    /// materialized under governance).
    pub checkpoints: u64,
    /// Aborts due to the node-creation ceiling.
    pub aborts_node_budget: u64,
    /// Aborts due to the wall-clock deadline.
    pub aborts_deadline: u64,
    /// Aborts due to cancellation (incl. fault injection).
    pub aborts_cancelled: u64,
}

impl GovernCounters {
    /// Record one governed operation's outcome.
    pub fn note(&mut self, checkpoints: u64, abort: Option<OpAbort>) {
        self.ops += 1;
        self.checkpoints += checkpoints;
        match abort {
            Some(OpAbort::NodeBudget) => self.aborts_node_budget += 1,
            Some(OpAbort::Deadline) => self.aborts_deadline += 1,
            Some(OpAbort::Cancelled) => self.aborts_cancelled += 1,
            None => {}
        }
    }

    /// Total aborts across all reasons.
    pub fn aborts(&self) -> u64 {
        self.aborts_node_budget + self.aborts_deadline + self.aborts_cancelled
    }

    /// Append this counter set as the snapshot's `govern.*` section.
    pub fn fill(&self, m: &mut MetricsSnapshot) {
        m.counter("govern.ops", self.ops);
        m.counter("govern.checkpoints", self.checkpoints);
        m.counter("govern.aborts", self.aborts());
        m.counter("govern.aborts_node_budget", self.aborts_node_budget);
        m.counter("govern.aborts_deadline", self.aborts_deadline);
        m.counter("govern.aborts_cancelled", self.aborts_cancelled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_subtracts_counters_keeps_gauges() {
        let mut a = MetricsSnapshot::new("t");
        a.counter("cache.lookups", 10);
        a.gauge("nodes.live", 5);
        let mut b = MetricsSnapshot::new("t");
        b.counter("cache.lookups", 25);
        b.gauge("nodes.live", 3);
        let d = b.delta(&a);
        assert_eq!(d.get("cache.lookups"), Some(15));
        assert_eq!(d.get("nodes.live"), Some(3));
    }

    #[test]
    fn json_nests_by_section() {
        let mut m = MetricsSnapshot::new("bbdd");
        m.counter("cache.hits", 1);
        m.counter("cache.lookups", 2);
        m.gauge("nodes.live", 7);
        let j = m.to_json();
        assert_eq!(
            j,
            "{\"backend\":\"bbdd\",\"cache\":{\"hits\":1,\"lookups\":2},\"nodes\":{\"live\":7}}"
        );
    }

    #[test]
    fn spans_balance_in_ring() {
        set_trace_enabled(true);
        trace_clear();
        {
            let mut s = span(Op::Apply);
            s.set_arg("nodes", 3);
        }
        event(Op::Gc, Some(("freed", 9)));
        set_trace_enabled(false);
        let tid = current_tid();
        let evs: Vec<_> = trace_events()
            .into_iter()
            .filter(|e| e.tid == tid)
            .collect();
        let begins = evs.iter().filter(|e| e.kind == EventKind::Begin).count();
        let ends = evs.iter().filter(|e| e.kind == EventKind::End).count();
        assert_eq!(begins, ends);
        assert!(evs.iter().any(|e| e.kind == EventKind::Instant));
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"args\":{\"nodes\":3}"));
    }

    #[test]
    fn histogram_quantiles_resolve_buckets() {
        set_profile_enabled(true);
        profile_reset();
        record_op_ns(Op::Swap, 100);
        record_op_ns(Op::Swap, 100);
        record_op_ns(Op::Swap, 1_000_000);
        let s = profile_snapshot();
        let row = s.ops.iter().find(|r| r.op == Op::Swap).unwrap();
        assert_eq!(row.count, 3);
        assert!(row.quantile_ns(0.5).unwrap() <= 256);
        assert!(row.quantile_ns(0.99).unwrap() >= 1_000_000);
        set_profile_enabled(false);
        profile_reset();
    }

    #[test]
    fn govern_counters_bucket_reasons() {
        let mut g = GovernCounters::default();
        g.note(10, None);
        g.note(5, Some(OpAbort::Deadline));
        g.note(1, Some(OpAbort::NodeBudget));
        assert_eq!(g.ops, 3);
        assert_eq!(g.checkpoints, 16);
        assert_eq!(g.aborts(), 2);
        let mut m = MetricsSnapshot::new("t");
        g.fill(&mut m);
        assert_eq!(m.get("govern.aborts_deadline"), Some(1));
    }
}

//! Registry of computed-table operation tags.
//!
//! Every result stored in the shared [`ComputedCache`](crate::ComputedCache)
//! is keyed by two 64-bit operand words *plus* a small operation tag so that
//! different operations on the same operands never alias. The seed package
//! used only the binary-`apply` tags (the operator's 4-bit truth table,
//! `0..=15`) and one ad-hoc `ite` tag defined privately by each manager;
//! with the verification ops layer the tag space is shared infrastructure,
//! so it lives here and both the BBDD and ROBDD packages draw from the same
//! registry.
//!
//! Layout (all tags must stay below [`MAX_TAG`], the cache reserves the top
//! bits):
//!
//! | tag          | operation                                   | key words |
//! |--------------|---------------------------------------------|-----------|
//! | `0..=15`     | binary `apply`, tag = `BoolOp` truth table  | `f`, `g` |
//! | [`ITE`]      | ternary if-then-else                        | `f`, `g:h` packed |
//! | [`EXISTS`]   | existential cube quantification `∃C.f`      | `f`, cube |
//! | [`FORALL`]   | universal cube quantification `∀C.f`        | `f`, cube |
//! | [`AND_EXISTS`]| fused relational product `∃C.(f ∧ g)`      | `f`, `g:cube` packed |
//! | [`COMPOSE`]  | single-variable composition `f[var := g]`   | `f`, `g:var` packed |
//!
//! The "cube" word is the packed edge of the conjunction of the quantified
//! variables' positive literals — canonical in each manager, so equal cubes
//! always produce equal key words.

/// First tag of the binary-`apply` range; the operator's 4-bit truth table
/// is the tag itself (`0..=15`).
pub const APPLY_BASE: u32 = 0;

/// Ternary if-then-else (`ite(f, g, h)`).
pub const ITE: u32 = 16;

/// Existential cube quantification (`∃C.f`).
pub const EXISTS: u32 = 17;

/// Universal cube quantification (`∀C.f`).
pub const FORALL: u32 = 18;

/// Fused and-exists / relational product (`∃C.(f ∧ g)`).
pub const AND_EXISTS: u32 = 19;

/// Single-variable composition (`f[var := g]`).
pub const COMPOSE: u32 = 20;

/// First tag available to downstream experiments; everything below is
/// reserved for the operations in this registry.
pub const USER_BASE: u32 = 64;

/// Exclusive upper bound of the legal tag space (the cache reserves tag
/// bits 30 and 31 for its age/empty encodings).
pub const MAX_TAG: u32 = 1 << 30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct_and_legal() {
        let tags = [ITE, EXISTS, FORALL, AND_EXISTS, COMPOSE, USER_BASE];
        for (i, &a) in tags.iter().enumerate() {
            assert!(a >= 16, "registry tags must not alias the apply range");
            assert!(a < MAX_TAG);
            for &b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}

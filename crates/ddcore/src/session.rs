//! The MVCC session layer: immutable shared base snapshots, per-client
//! overlay sessions, and epoch-based reclamation — BDD-as-a-service.
//!
//! The parallel managers' frozen-base / append-only-overlay /
//! deterministic-commit pipeline is an MVCC primitive: readers never see a
//! write in progress because writes land in private scratch space and are
//! committed at a quiescent point. This module promotes that design from a
//! per-operation trick into a serving architecture:
//!
//! * [`SharedBase`] — an immutable, `Arc`-shared snapshot of any
//!   [`RawManager`] backend holding a published function [`Library`].
//!   Nothing hands out `&mut` access to a published backend, so the
//!   snapshot is frozen by construction and can be read from any number
//!   of threads without a lock.
//! * [`Session`] — a per-client overlay forked off a base snapshot
//!   ([`SessionBackend::fork`]: a flat copy of the node store sharing no
//!   mutable state with the base). All session operations run in the
//!   fork, so concurrent sessions never contend and results are
//!   *bit-identical* to running the same operations sequentially on a
//!   private manager. Admission control is a per-session
//!   [`Admission`] minting one [`OpBudget`] per request, all carrying the
//!   session's [`CancelToken`](crate::govern::CancelToken).
//! * **Epoch reclamation** — every snapshot belongs to an epoch tracked by
//!   an [`EpochTracker`] shared along the publish lineage. Dropping a
//!   session reclaims its overlay nodes immediately (the fork is freed,
//!   and the `session.*` gauges fall back); [`Session::publish`] runs the
//!   deterministic commit (collect dead intermediates, merge the session's
//!   stored functions into the library) and mints the next-epoch snapshot.
//!   A retired snapshot is freed exactly when its epoch drains — the last
//!   `Arc` (held by its remaining sessions) drops — and never earlier.
//! * [`OverlayFrame`] — the overlay scratch bundle (sharded unique table,
//!   append-only arena, lossy atomic cache, GC-generation epoch) the
//!   parallel managers previously each hand-assembled from [`crate::par`]
//!   parts; extracted here so the per-op overlay machinery and the
//!   session layer evolve together.
//!
//! ```
//! use ddcore::session::{Library, SessionBackend, SharedBase};
//! # // The doctest runs on the truth-table test backend compiled into
//! # // ddcore's test build only; real backends live in the manager crates.
//! ```
//!
//! The serving front door (newline-delimited JSON over stdio or TCP) is
//! built on this module by the CLI; see `DESIGN.md` § Serving.

use crate::api::RawManager;
use crate::boolop::BoolOp;
use crate::govern::{Admission, OpAbort, OpBudget};
use crate::obs::{span, MetricsSnapshot, Op};
use crate::par::{AtomicCache, OverlayArena, ShardedTable};
use crate::roots::RootGuard;
use crate::table::TableKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ───────────────────────── overlay frame ─────────────────────────────────

/// The overlay scratch bundle of one frozen-base parallel manager: the
/// sharded unique table, the append-only node arena and the lossy atomic
/// computed cache, plus the inner-manager GC generation the cache epoch
/// was last synchronized to.
///
/// Both parallel managers (`bbdd::ParBbdd`, `robdd::ParRobdd`) used to
/// carry these as four loose fields with duplicated reset/invalidate
/// logic; the frame owns that lifecycle in one place.
#[derive(Debug)]
pub struct OverlayFrame<K> {
    /// Overlay unique table (consulted after the frozen base's subtables).
    pub table: ShardedTable<K>,
    /// Append-only overlay node records.
    pub arena: OverlayArena,
    /// Lossy concurrent computed cache, invalidated by epoch bump.
    pub cache: AtomicCache,
    /// Inner-manager GC generation at the last cache-epoch sync. A
    /// collection through *any* path is caught by comparing generations
    /// before trusting cached node ids.
    seen_generation: u64,
}

impl<K: TableKey> OverlayFrame<K> {
    /// A fresh frame: `shards` table shards of `per_shard_capacity`, and a
    /// `cache_ways`-way atomic cache.
    #[must_use]
    pub fn new(shards: usize, per_shard_capacity: usize, cache_ways: usize) -> Self {
        OverlayFrame {
            table: ShardedTable::new(shards, per_shard_capacity),
            arena: OverlayArena::new(),
            cache: AtomicCache::new(cache_ways),
            seen_generation: 0,
        }
    }

    /// Recycle the per-operation scratch (table entries and arena records)
    /// without invalidating the cross-operation computed cache. Runs at
    /// the start of every parallel phase.
    pub fn recycle(&self) {
        self.table.clear();
        self.arena.reset();
    }

    /// Synchronize the cache epoch with the owning manager's GC
    /// generation: if a collection happened since the last sync, bump the
    /// cache epoch (O(1) invalidation of every id-keyed entry). Returns
    /// `true` when an invalidation fired.
    pub fn sync_generation(&mut self, generation: u64) -> bool {
        if self.seen_generation == generation {
            return false;
        }
        self.invalidate(generation);
        true
    }

    /// Unconditionally invalidate the computed cache and record
    /// `generation` as synchronized (a collection is known to have run).
    pub fn invalidate(&mut self, generation: u64) {
        self.cache.bump_epoch();
        self.seen_generation = generation;
    }

    /// Overlay nodes materialized by the current operation.
    #[must_use]
    pub fn overlay_nodes(&self) -> u32 {
        self.arena.len()
    }
}

// ───────────────────────── function library ──────────────────────────────

/// A published, named function library: the content of a [`SharedBase`].
///
/// Entries are name → edge in insertion order (publish order is part of
/// the deterministic-commit contract); `inputs` names the variable space
/// (`inputs[i]` is manager variable `i`).
#[derive(Debug, Clone)]
pub struct Library<E> {
    inputs: Vec<String>,
    names: Vec<String>,
    edges: Vec<E>,
    index: HashMap<String, usize>,
}

impl<E: Copy> Library<E> {
    /// An empty library over the named variable space.
    #[must_use]
    pub fn new(inputs: Vec<String>) -> Self {
        Library {
            inputs,
            names: Vec::new(),
            edges: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Insert (or overwrite) `name` → `edge`; returns `true` when the name
    /// was new.
    pub fn insert(&mut self, name: &str, edge: E) -> bool {
        if let Some(&i) = self.index.get(name) {
            self.edges[i] = edge;
            false
        } else {
            self.index.insert(name.to_string(), self.names.len());
            self.names.push(name.to_string());
            self.edges.push(edge);
            true
        }
    }

    /// Look up a published function.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<E> {
        self.index.get(name).map(|&i| self.edges[i])
    }

    /// Published names in insertion order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Published edges, parallel to [`Library::names`].
    #[must_use]
    pub fn edges(&self) -> &[E] {
        &self.edges
    }

    /// Variable names; `inputs()[i]` is manager variable `i`.
    #[must_use]
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Index of a named input variable.
    #[must_use]
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|n| n == name)
    }

    /// Number of published functions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing is published.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// `(name, edge)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, E)> + '_ {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.edges.iter().copied())
    }
}

// ───────────────────────── epoch tracking ────────────────────────────────

/// Shared bookkeeping of one publish lineage: epochs, live/retired
/// snapshots, live sessions and their overlay-node footprint. All counters
/// are atomics — sessions on different threads update them without a lock
/// — and surface as the `session.*` / `epoch.*` metrics sections.
#[derive(Debug, Default)]
pub struct EpochTracker {
    epoch: AtomicU64,
    snapshots_live: AtomicU64,
    snapshots_retired: AtomicU64,
    published: AtomicU64,
    sessions_created: AtomicU64,
    sessions_live: AtomicU64,
    sessions_dropped: AtomicU64,
    overlay_nodes: AtomicU64,
    nodes_reclaimed: AtomicU64,
    ops: AtomicU64,
    ops_aborted: AtomicU64,
}

impl EpochTracker {
    fn next_epoch(&self) -> u64 {
        self.snapshots_live.fetch_add(1, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn note_snapshot_retired(&self) {
        self.snapshots_live.fetch_sub(1, Ordering::Relaxed);
        self.snapshots_retired.fetch_add(1, Ordering::Relaxed);
    }

    fn note_session_created(&self) {
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
        self.sessions_live.fetch_add(1, Ordering::Relaxed);
    }

    fn note_session_dropped(&self, overlay_nodes: u64, ops: u64, aborted: u64) {
        self.sessions_live.fetch_sub(1, Ordering::Relaxed);
        self.sessions_dropped.fetch_add(1, Ordering::Relaxed);
        self.overlay_nodes
            .fetch_sub(overlay_nodes, Ordering::Relaxed);
        self.nodes_reclaimed
            .fetch_add(overlay_nodes, Ordering::Relaxed);
        self.ops.fetch_add(ops, Ordering::Relaxed);
        self.ops_aborted.fetch_add(aborted, Ordering::Relaxed);
    }

    fn note_published(&self) {
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    fn adjust_overlay_nodes(&self, old: u64, new: u64) {
        if new >= old {
            self.overlay_nodes.fetch_add(new - old, Ordering::Relaxed);
        } else {
            self.overlay_nodes.fetch_sub(old - new, Ordering::Relaxed);
        }
    }

    /// Current (highest published) epoch.
    #[must_use]
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Snapshots not yet retired (their epochs have not drained).
    #[must_use]
    pub fn snapshots_live(&self) -> u64 {
        self.snapshots_live.load(Ordering::Relaxed)
    }

    /// Snapshots whose epoch drained (every `Arc`, i.e. every session on
    /// them, released).
    #[must_use]
    pub fn snapshots_retired(&self) -> u64 {
        self.snapshots_retired.load(Ordering::Relaxed)
    }

    /// Live sessions across all snapshots of this lineage.
    #[must_use]
    pub fn sessions_live(&self) -> u64 {
        self.sessions_live.load(Ordering::Relaxed)
    }

    /// Current overlay-node footprint of all live sessions.
    #[must_use]
    pub fn overlay_nodes(&self) -> u64 {
        self.overlay_nodes.load(Ordering::Relaxed)
    }

    /// Overlay nodes reclaimed by dropped (or published) sessions.
    #[must_use]
    pub fn nodes_reclaimed(&self) -> u64 {
        self.nodes_reclaimed.load(Ordering::Relaxed)
    }

    /// `publish()` commits in this lineage.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Fill the `session.*` and `epoch.*` metrics sections.
    pub fn fill(&self, m: &mut MetricsSnapshot) {
        m.gauge("epoch.current", self.current_epoch());
        m.gauge("epoch.snapshots_live", self.snapshots_live());
        m.counter("epoch.snapshots_retired", self.snapshots_retired());
        m.counter("epoch.published", self.published());
        m.counter(
            "session.created",
            self.sessions_created.load(Ordering::Relaxed),
        );
        m.gauge("session.live", self.sessions_live());
        m.counter(
            "session.dropped",
            self.sessions_dropped.load(Ordering::Relaxed),
        );
        m.gauge("session.nodes", self.overlay_nodes());
        m.counter("session.nodes_reclaimed", self.nodes_reclaimed());
        m.counter("session.ops", self.ops.load(Ordering::Relaxed));
        m.counter(
            "session.ops_aborted",
            self.ops_aborted.load(Ordering::Relaxed),
        );
    }
}

// ───────────────────────── backend seam ──────────────────────────────────

/// The one extra capability a [`RawManager`] needs to participate in the
/// session layer: forking a private copy whose edges are bit-identical to
/// the original's.
///
/// A fork shares **no mutable state** with its source — mutating the fork
/// can never be observed through the base, which is what lets any number
/// of sessions run without locking the shared snapshot. Transient caches,
/// statistics and the external-root registry start fresh in the fork
/// (none of them affect function semantics or node identity); the node
/// store and variable order are copied, so every edge of the base denotes
/// the same function in the fork.
pub trait SessionBackend: RawManager<Edge: Send + Sync> + Send + Sync + Sized + 'static {
    /// A private copy of this manager; see the trait docs for the
    /// edge-validity and isolation contract.
    fn fork(&self) -> Self;
}

// ───────────────────────── shared base ───────────────────────────────────

/// An immutable, `Arc`-shared snapshot of a backend holding a published
/// [`Library`] — the MVCC base version sessions fork from.
///
/// No `&mut` access exists once published, so reads (session forks,
/// lock-free [`SharedBase::eval`] probes) need no synchronization. The
/// snapshot is retired — its [`EpochTracker`] counters move — exactly when
/// the last `Arc` drops, i.e. when its epoch has drained.
#[derive(Debug)]
pub struct SharedBase<M: RawManager> {
    backend: M,
    library: Library<M::Edge>,
    epoch: u64,
    tracker: Arc<EpochTracker>,
}

impl<M: SessionBackend> SharedBase<M> {
    /// Publish `backend` + `library` as the first snapshot of a new
    /// lineage (epoch 1).
    pub fn publish(backend: M, library: Library<M::Edge>) -> Arc<Self> {
        Self::publish_with(backend, library, Arc::new(EpochTracker::default()))
    }

    /// Publish into an existing lineage (the [`Session::publish`] path).
    pub fn publish_with(
        backend: M,
        library: Library<M::Edge>,
        tracker: Arc<EpochTracker>,
    ) -> Arc<Self> {
        let _sp = span(Op::Publish);
        let epoch = tracker.next_epoch();
        Arc::new(SharedBase {
            backend,
            library,
            epoch,
            tracker,
        })
    }

    /// Fork a session with no default request limits.
    #[must_use]
    pub fn session(self: &Arc<Self>) -> Session<M> {
        self.session_with(Admission::unlimited())
    }

    /// Fork a session under the given admission-control policy.
    #[must_use]
    pub fn session_with(self: &Arc<Self>, admission: Admission) -> Session<M> {
        Session::fork(Arc::clone(self), admission)
    }

    /// The published library.
    #[must_use]
    pub fn library(&self) -> &Library<M::Edge> {
        &self.library
    }

    /// Read access to the frozen backend.
    #[must_use]
    pub fn backend(&self) -> &M {
        &self.backend
    }

    /// This snapshot's epoch (1-based within its lineage).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The lineage's shared epoch/session bookkeeping.
    #[must_use]
    pub fn tracker(&self) -> &Arc<EpochTracker> {
        &self.tracker
    }

    /// Lock-free point query against the frozen base — no session needed
    /// for pure reads that allocate nothing.
    #[must_use]
    pub fn eval(&self, name: &str, assignment: &[bool]) -> Option<bool> {
        let f = self.library.get(name)?;
        Some(self.backend.eval_edge(f, assignment))
    }
}

impl<M: RawManager> Drop for SharedBase<M> {
    fn drop(&mut self) {
        self.tracker.note_snapshot_retired();
    }
}

// ───────────────────────── session errors ────────────────────────────────

/// A session request that could not produce a full result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The named function is neither published nor session-local.
    UnknownFunction(String),
    /// Structurally invalid request (bad variable index, short
    /// assignment, …).
    InvalidRequest(String),
    /// The request's [`OpBudget`] stopped the operation — a partial
    /// verdict, the session and base both remain fully usable.
    Aborted(OpAbort),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownFunction(n) => write!(f, "unknown function '{n}'"),
            SessionError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            SessionError::Aborted(a) => write!(f, "aborted: {a}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<OpAbort> for SessionError {
    fn from(a: OpAbort) -> Self {
        SessionError::Aborted(a)
    }
}

/// Outcome of an in-session combinational equivalence check between two
/// published (or session-local) functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CecOutcome {
    /// `true` when the functions agree on every assignment.
    pub equivalent: bool,
    /// A distinguishing assignment when inequivalent.
    pub counterexample: Option<Vec<bool>>,
    /// Number of distinguishing assignments (`None` when equivalent or
    /// uncountable in 128 bits).
    pub distinguishing: Option<u128>,
}

// ───────────────────────── session ───────────────────────────────────────

/// A per-client overlay over a [`SharedBase`] snapshot.
///
/// The session owns a private fork of the frozen backend: every operation
/// runs against base functions without locking the base, new nodes land
/// in the fork only, and results computed here are bit-identical to the
/// same operations run sequentially on a private manager (determinism is
/// the backends' contract; the fork starts from the identical node
/// store). Results can be stored under session-local names, queried, and
/// finally committed with [`Session::publish`] — or discarded wholesale
/// by dropping the session, which reclaims every overlay node at once.
#[derive(Debug)]
pub struct Session<M: SessionBackend> {
    base: Arc<SharedBase<M>>,
    /// `None` only after `publish` consumed the fork.
    overlay: Option<M>,
    admission: Admission,
    locals: HashMap<String, M::Edge>,
    /// Root pins keeping the library and the session-local definitions
    /// alive across session-initiated collections.
    pins: Vec<RootGuard>,
    /// Live nodes in the fork at creation — the base's share, excluded
    /// from this session's overlay accounting.
    base_live: usize,
    /// Overlay-node count last reported to the tracker gauge.
    reported_nodes: u64,
    ops: u64,
    aborted: u64,
}

impl<M: SessionBackend> Session<M> {
    fn fork(base: Arc<SharedBase<M>>, admission: Admission) -> Self {
        let mut sp = span(Op::SessionFork);
        sp.set_arg("epoch", base.epoch);
        let overlay = base.backend.fork();
        let pins = overlay
            .root_registry()
            .guard_many(base.library.edges().iter().map(|&e| M::edge_bits(e)));
        let base_live = overlay.live_nodes();
        base.tracker.note_session_created();
        Session {
            base,
            overlay: Some(overlay),
            admission,
            locals: HashMap::new(),
            pins,
            base_live,
            reported_nodes: 0,
            ops: 0,
            aborted: 0,
        }
    }

    fn overlay(&self) -> &M {
        self.overlay.as_ref().expect("session fork is live")
    }

    fn overlay_mut(&mut self) -> &mut M {
        self.overlay.as_mut().expect("session fork is live")
    }

    /// The snapshot this session reads from.
    #[must_use]
    pub fn base(&self) -> &Arc<SharedBase<M>> {
        &self.base
    }

    /// The session's admission-control policy (cancel it to abort the
    /// in-flight and all future requests).
    #[must_use]
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Nodes this session has materialized beyond the base snapshot.
    #[must_use]
    pub fn overlay_nodes(&self) -> usize {
        self.overlay().live_nodes().saturating_sub(self.base_live)
    }

    /// Resolve a name: session-local definitions shadow the library.
    pub fn edge(&self, name: &str) -> Result<M::Edge, SessionError> {
        self.locals
            .get(name)
            .copied()
            .or_else(|| self.base.library.get(name))
            .ok_or_else(|| SessionError::UnknownFunction(name.to_string()))
    }

    /// Names visible to this session: the library's, then the locals'.
    #[must_use]
    pub fn visible_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.base.library.names().to_vec();
        let mut locals: Vec<&String> = self
            .locals
            .keys()
            .filter(|n| self.base.library.get(n).is_none())
            .collect();
        locals.sort();
        names.extend(locals.into_iter().cloned());
        names
    }

    /// Bind `name` to an edge of this session's fork (pinning it across
    /// session collections). Local names shadow the library and are the
    /// candidates [`Session::publish`] commits.
    pub fn store(&mut self, name: &str, edge: M::Edge) {
        self.pins
            .push(self.overlay().root_registry().guard(M::edge_bits(edge)));
        self.locals.insert(name.to_string(), edge);
    }

    /// Book-keep one finished request: op/abort counters plus the shared
    /// overlay-node gauge.
    fn finish_op<T>(&mut self, r: Result<T, OpAbort>) -> Result<T, SessionError> {
        self.ops += 1;
        if r.is_err() {
            self.aborted += 1;
        }
        let now = self.overlay_nodes() as u64;
        self.base
            .tracker
            .adjust_overlay_nodes(self.reported_nodes, now);
        self.reported_nodes = now;
        r.map_err(SessionError::from)
    }

    fn check_vars(&self, vars: &[usize]) -> Result<(), SessionError> {
        let n = self.overlay().num_vars();
        match vars.iter().find(|&&v| v >= n) {
            Some(&v) => Err(SessionError::InvalidRequest(format!(
                "variable {v} out of range (manager has {n})"
            ))),
            None => Ok(()),
        }
    }

    /// Evaluate a function on a full assignment (`assignment[i]` =
    /// variable `i`). Pure read; never allocates overlay nodes.
    pub fn eval(&mut self, name: &str, assignment: &[bool]) -> Result<bool, SessionError> {
        let f = self.edge(name)?;
        let n = self.overlay().num_vars();
        if assignment.len() < n {
            return Err(SessionError::InvalidRequest(format!(
                "assignment has {} values, manager has {n} variables",
                assignment.len()
            )));
        }
        let r = self.overlay().eval_edge(f, assignment);
        self.finish_op(Ok(r))
    }

    /// Model-count a function under the request budget.
    pub fn sat_count(&mut self, name: &str, budget: &mut OpBudget) -> Result<u128, SessionError> {
        let f = self.edge(name)?;
        let r = self.overlay().try_sat_count_edge(f, budget);
        self.finish_op(r)
    }

    /// Model-count a function over a caller-declared variable universe
    /// `0..n_vars` (the normalization CNF counting needs — see
    /// [`RawManager::sat_count_over_edge`]) under the request budget.
    ///
    /// # Errors
    /// [`SessionError::InvalidRequest`] when the count is not exactly
    /// representable (more than 127 declared or manager variables, or the
    /// function depends on a variable outside `0..n_vars`).
    pub fn sat_count_over(
        &mut self,
        name: &str,
        n_vars: usize,
        budget: &mut OpBudget,
    ) -> Result<u128, SessionError> {
        let f = self.edge(name)?;
        let r = self
            .overlay_mut()
            .try_sat_count_over_edge(f, n_vars, budget);
        match self.finish_op(r)? {
            Some(c) => Ok(c),
            None => Err(SessionError::InvalidRequest(format!(
                "count over {n_vars} vars is not exactly representable"
            ))),
        }
    }

    /// Variables a visible function depends on, ascending. Pure read.
    pub fn support(&mut self, name: &str) -> Result<Vec<usize>, SessionError> {
        let f = self.edge(name)?;
        let r = self.overlay_mut().support_edge(f);
        self.finish_op(Ok(r))
    }

    /// Number of variables in the session's fork.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.overlay().num_vars()
    }

    /// Run a caller-supplied construction directly against the session's
    /// fork under the request budget — the seam the CNF front door uses
    /// to build a DIMACS instance inside a session (`load_cnf`) and to
    /// count cofactor slices. The closure gets the fork and the budget;
    /// nodes it allocates land in the overlay like any other session op
    /// and are reclaimed on drop unless the result is [`Session::store`]d
    /// and published.
    ///
    /// # Errors
    /// The closure's abort, converted to [`SessionError::Aborted`].
    pub fn build_raw<R>(
        &mut self,
        budget: &mut OpBudget,
        build: impl FnOnce(&mut M, &mut OpBudget) -> Result<R, OpAbort>,
    ) -> Result<R, SessionError> {
        let r = build(self.overlay_mut(), budget);
        self.finish_op(r)
    }

    /// Canonical node count of a function (diagram size, not manager
    /// size).
    pub fn node_count(&mut self, name: &str) -> Result<usize, SessionError> {
        let f = self.edge(name)?;
        let r = self.overlay().node_count_edge(f);
        self.finish_op(Ok(r))
    }

    /// Binary apply of two visible functions; the result is stored under
    /// `store` when given. Returns the result's canonical node count.
    pub fn apply(
        &mut self,
        op: BoolOp,
        f: &str,
        g: &str,
        store: Option<&str>,
        budget: &mut OpBudget,
    ) -> Result<usize, SessionError> {
        let fe = self.edge(f)?;
        let ge = self.edge(g)?;
        let r = self.overlay_mut().try_apply_edge(op, fe, ge, budget);
        let e = self.finish_op(r)?;
        if let Some(n) = store {
            self.store(n, e);
        }
        Ok(self.overlay().node_count_edge(e))
    }

    /// Existential (`exists = true`) or universal quantification of a
    /// visible function over `vars`; stored under `store` when given.
    /// Returns the result's canonical node count.
    pub fn quantify(
        &mut self,
        exists: bool,
        f: &str,
        vars: &[usize],
        store: Option<&str>,
        budget: &mut OpBudget,
    ) -> Result<usize, SessionError> {
        let fe = self.edge(f)?;
        self.check_vars(vars)?;
        let r = if exists {
            self.overlay_mut().try_exists_edge(fe, vars, budget)
        } else {
            self.overlay_mut().try_forall_edge(fe, vars, budget)
        };
        let e = self.finish_op(r)?;
        if let Some(n) = store {
            self.store(n, e);
        }
        Ok(self.overlay().node_count_edge(e))
    }

    /// Substitute `g` for variable `var` in `f`; stored under `store`
    /// when given. Returns the result's canonical node count.
    pub fn compose(
        &mut self,
        f: &str,
        var: usize,
        g: &str,
        store: Option<&str>,
        budget: &mut OpBudget,
    ) -> Result<usize, SessionError> {
        let fe = self.edge(f)?;
        let ge = self.edge(g)?;
        self.check_vars(&[var])?;
        let r = self.overlay_mut().try_compose_edge(fe, var, ge, budget);
        let e = self.finish_op(r)?;
        if let Some(n) = store {
            self.store(n, e);
        }
        Ok(self.overlay().node_count_edge(e))
    }

    /// In-session combinational equivalence check of two visible
    /// functions: XOR miter + existential quantification over every
    /// variable, under the request budget. On refutation the miter yields
    /// a concrete counterexample and the distinguishing-assignment count.
    pub fn cec(
        &mut self,
        f: &str,
        g: &str,
        budget: &mut OpBudget,
    ) -> Result<CecOutcome, SessionError> {
        let fe = self.edge(f)?;
        let ge = self.edge(g)?;
        let _sp = span(Op::Cec);
        let n = self.overlay().num_vars();
        let miter = {
            let r = self
                .overlay_mut()
                .try_apply_edge(BoolOp::XOR, fe, ge, budget);
            self.finish_op(r)?
        };
        let all: Vec<usize> = (0..n).collect();
        let quantified = {
            let r = self.overlay_mut().try_exists_edge(miter, &all, budget);
            self.finish_op(r)?
        };
        if quantified == self.overlay().constant_edge(false) {
            Ok(CecOutcome {
                equivalent: true,
                counterexample: None,
                distinguishing: None,
            })
        } else {
            Ok(CecOutcome {
                equivalent: false,
                counterexample: self.overlay().any_sat_edge(miter).map(|m| m[..n].to_vec()),
                distinguishing: self.overlay().sat_count_checked_edge(miter),
            })
        }
    }

    /// Collect dead overlay nodes (everything not reachable from the
    /// library or a session-local definition). The base snapshot is
    /// untouched — the fork owns its node store.
    pub fn collect(&mut self) -> usize {
        let freed = self.overlay_mut().gc();
        let now = self.overlay_nodes() as u64;
        self.base
            .tracker
            .adjust_overlay_nodes(self.reported_nodes, now);
        self.reported_nodes = now;
        freed
    }

    /// The deterministic commit: collect dead intermediates, merge the
    /// session-local definitions into the library (sorted by name, so the
    /// committed library is independent of definition order), and mint
    /// the next-epoch [`SharedBase`] of this lineage.
    ///
    /// The session is consumed; its overlay accounting is released
    /// exactly as on drop (the nodes now live in the new snapshot, not in
    /// any session).
    pub fn publish(mut self) -> Arc<SharedBase<M>> {
        let _sp = span(Op::Publish);
        // Compact: pins keep the library and locals alive, everything
        // else in the fork is dead scratch.
        self.overlay_mut().gc();
        let mut library = Library::new(self.base.library.inputs().to_vec());
        for (name, e) in self.base.library.iter() {
            library.insert(name, e);
        }
        let mut names: Vec<&String> = self.locals.keys().collect();
        names.sort();
        for name in names {
            let e = self.locals[name];
            library.insert(name, e);
        }
        let backend = self.overlay.take().expect("session fork is live");
        let tracker = Arc::clone(&self.base.tracker);
        tracker.note_published();
        // Dropping `self` (pins included) releases the fork's root slots;
        // the new snapshot is frozen, so nothing collects from it again.
        SharedBase::publish_with(backend, library, tracker)
    }
}

impl<M: SessionBackend> Drop for Session<M> {
    fn drop(&mut self) {
        self.base
            .tracker
            .note_session_dropped(self.reported_nodes, self.ops, self.aborted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_frame_lifecycle() {
        #[derive(Clone, Copy, PartialEq, Eq, Default)]
        struct K(u64);
        impl TableKey for K {
            fn table_hash(&self, _h: &crate::cantor::CantorHasher) -> u64 {
                self.0
            }
        }
        let mut f: OverlayFrame<K> = OverlayFrame::new(4, 8, 1 << 10);
        assert_eq!(f.overlay_nodes(), 0);
        let i = f.arena.alloc(1, 2, 3);
        f.table.get_or_insert_with(K(7), || i);
        assert_eq!(f.overlay_nodes(), 1);
        f.recycle();
        assert_eq!(f.overlay_nodes(), 0);
        assert_eq!(f.table.len(), 0);
        assert!(!f.sync_generation(0), "generation unchanged → no bump");
        assert!(f.sync_generation(3), "a collection happened → bump");
        assert!(!f.sync_generation(3));
    }

    #[test]
    fn library_insert_shadow_lookup() {
        let mut lib: Library<u32> = Library::new(vec!["a".into(), "b".into()]);
        assert!(lib.insert("f", 1));
        assert!(lib.insert("g", 2));
        assert!(!lib.insert("f", 3), "overwrite is not a new name");
        assert_eq!(lib.get("f"), Some(3));
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.input_index("b"), Some(1));
        assert_eq!(lib.names(), ["f".to_string(), "g".to_string()]);
    }

    #[test]
    fn epoch_tracker_accounting() {
        let t = EpochTracker::default();
        assert_eq!(t.next_epoch(), 1);
        assert_eq!(t.next_epoch(), 2);
        assert_eq!(t.snapshots_live(), 2);
        t.note_snapshot_retired();
        assert_eq!(t.snapshots_live(), 1);
        assert_eq!(t.snapshots_retired(), 1);
        t.note_session_created();
        t.adjust_overlay_nodes(0, 40);
        t.adjust_overlay_nodes(40, 25);
        assert_eq!(t.overlay_nodes(), 25);
        t.note_session_dropped(25, 7, 1);
        assert_eq!(t.overlay_nodes(), 0);
        assert_eq!(t.nodes_reclaimed(), 25);
        assert_eq!(t.sessions_live(), 0);
        let mut m = MetricsSnapshot::new("test");
        t.fill(&mut m);
        assert_eq!(m.get("session.nodes_reclaimed"), Some(25));
        assert_eq!(m.get("epoch.snapshots_retired"), Some(1));
    }
}

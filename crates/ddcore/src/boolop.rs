//! Two-operand Boolean operators `⊗` as 4-bit truth tables.
//!
//! Algorithm 1 of the paper computes `f ⊗ g` for *any* Boolean function of
//! two operands and adapts the operator when complement attributes appear on
//! the traversed edges (`⊗_D = updateop(⊗, attrs)`). Representing `⊗` as a
//! 4-bit truth table makes `updateop` a constant-time bit permutation:
//!
//! * complementing the **output** complements the table;
//! * complementing operand **f** swaps the table rows;
//! * complementing operand **g** swaps the table columns;
//! * swapping the **operands** transposes the table.
//!
//! These rewrites are used by `apply` to bring every recursive call into a
//! *strong canonical operand form* (regular operands, smaller id first),
//! which maximizes computed-table hit rates exactly as the paper intends.

/// A two-input Boolean operator encoded as a truth table.
///
/// Bit `(f << 1) | g` of the table holds the value of `f ⊗ g`.
///
/// ```
/// use ddcore::BoolOp;
/// assert!(BoolOp::AND.eval(true, true));
/// assert!(!BoolOp::AND.eval(true, false));
/// assert!(BoolOp::XOR.eval(true, false));
/// assert_eq!(BoolOp::NAND, BoolOp::AND.complement_output());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoolOp(u8);

impl BoolOp {
    /// Constant false.
    pub const FALSE: BoolOp = BoolOp(0b0000);
    /// Logical conjunction.
    pub const AND: BoolOp = BoolOp(0b1000);
    /// `f ∧ ¬g`.
    pub const AND_NOT: BoolOp = BoolOp(0b0100);
    /// Projection on `f`.
    pub const FIRST: BoolOp = BoolOp(0b1100);
    /// `¬f ∧ g`.
    pub const NOT_AND: BoolOp = BoolOp(0b0010);
    /// Projection on `g`.
    pub const SECOND: BoolOp = BoolOp(0b1010);
    /// Exclusive or.
    pub const XOR: BoolOp = BoolOp(0b0110);
    /// Logical disjunction.
    pub const OR: BoolOp = BoolOp(0b1110);
    /// Negated disjunction.
    pub const NOR: BoolOp = BoolOp(0b0001);
    /// Equivalence (biconditional, XNOR).
    pub const XNOR: BoolOp = BoolOp(0b1001);
    /// `¬g`.
    pub const NOT_SECOND: BoolOp = BoolOp(0b0101);
    /// Reverse implication `f ∨ ¬g`.
    pub const OR_NOT: BoolOp = BoolOp(0b1101);
    /// `¬f`.
    pub const NOT_FIRST: BoolOp = BoolOp(0b0011);
    /// Implication `¬f ∨ g`.
    pub const IMPLIES: BoolOp = BoolOp(0b1011);
    /// Negated conjunction.
    pub const NAND: BoolOp = BoolOp(0b0111);
    /// Constant true.
    pub const TRUE: BoolOp = BoolOp(0b1111);

    /// Build an operator from its 4-bit truth table.
    ///
    /// # Panics
    /// Panics if `tt > 0b1111`.
    #[must_use]
    pub fn from_table(tt: u8) -> Self {
        assert!(tt <= 0b1111, "truth table must fit in 4 bits");
        BoolOp(tt)
    }

    /// The raw 4-bit truth table.
    #[must_use]
    pub fn table(self) -> u8 {
        self.0
    }

    /// Evaluate `f ⊗ g`.
    #[inline]
    #[must_use]
    pub fn eval(self, f: bool, g: bool) -> bool {
        (self.0 >> (((f as u8) << 1) | g as u8)) & 1 == 1
    }

    /// `updateop` for a complemented result: `¬(f ⊗ g)`.
    #[inline]
    #[must_use]
    pub fn complement_output(self) -> Self {
        BoolOp(self.0 ^ 0b1111)
    }

    /// `updateop` for a complemented first operand: `op'` with
    /// `f op' g = (¬f) op g`.
    #[inline]
    #[must_use]
    pub fn complement_first(self) -> Self {
        BoolOp(((self.0 & 0b0011) << 2) | ((self.0 & 0b1100) >> 2))
    }

    /// `updateop` for a complemented second operand.
    #[inline]
    #[must_use]
    pub fn complement_second(self) -> Self {
        BoolOp(((self.0 & 0b0101) << 1) | ((self.0 & 0b1010) >> 1))
    }

    /// `updateop` for swapped operands: `op'` with `f op' g = g op f`.
    #[inline]
    #[must_use]
    pub fn swap_operands(self) -> Self {
        let b1 = (self.0 >> 1) & 1;
        let b2 = (self.0 >> 2) & 1;
        BoolOp((self.0 & 0b1001) | (b1 << 2) | (b2 << 1))
    }

    /// The unary function obtained when both operands are the same edge
    /// (`f ⊗ f`), expressed on that operand.
    #[inline]
    #[must_use]
    pub fn on_equal_operands(self) -> Unary {
        Unary::from_bits(self.eval(false, false), self.eval(true, true))
    }

    /// The unary function obtained when `g == ¬f`, expressed on `f`.
    #[inline]
    #[must_use]
    pub fn on_complement_operands(self) -> Unary {
        Unary::from_bits(self.eval(false, true), self.eval(true, false))
    }

    /// The unary function on `g` obtained when `f` is the constant `c`.
    #[inline]
    #[must_use]
    pub fn on_first_const(self, c: bool) -> Unary {
        Unary::from_bits(self.eval(c, false), self.eval(c, true))
    }

    /// The unary function on `f` obtained when `g` is the constant `c`.
    #[inline]
    #[must_use]
    pub fn on_second_const(self, c: bool) -> Unary {
        Unary::from_bits(self.eval(false, c), self.eval(true, c))
    }

    /// All sixteen operators, for exhaustive tests and benches.
    #[must_use]
    pub fn all() -> [BoolOp; 16] {
        let mut out = [BoolOp(0); 16];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = BoolOp(i as u8);
        }
        out
    }
}

/// Result shape of a trivially reducible `apply` call (the paper's
/// `identical_terminal` list): a unary function of one remaining operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unary {
    /// Constant false.
    Zero,
    /// Constant true.
    One,
    /// The operand itself.
    Identity,
    /// The complement of the operand.
    Complement,
}

impl Unary {
    #[inline]
    fn from_bits(at_false: bool, at_true: bool) -> Self {
        match (at_false, at_true) {
            (false, false) => Unary::Zero,
            (true, true) => Unary::One,
            (false, true) => Unary::Identity,
            (true, false) => Unary::Complement,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bools() -> [bool; 2] {
        [false, true]
    }

    #[test]
    fn named_ops_evaluate_correctly() {
        for f in bools() {
            for g in bools() {
                assert_eq!(BoolOp::AND.eval(f, g), f && g);
                assert_eq!(BoolOp::OR.eval(f, g), f || g);
                assert_eq!(BoolOp::XOR.eval(f, g), f ^ g);
                assert_eq!(BoolOp::XNOR.eval(f, g), !(f ^ g));
                assert_eq!(BoolOp::NAND.eval(f, g), !(f && g));
                assert_eq!(BoolOp::NOR.eval(f, g), !(f || g));
                assert_eq!(BoolOp::IMPLIES.eval(f, g), !f || g);
                assert_eq!(BoolOp::AND_NOT.eval(f, g), f && !g);
                assert_eq!(BoolOp::FIRST.eval(f, g), f);
                assert_eq!(BoolOp::SECOND.eval(f, g), g);
            }
        }
    }

    #[test]
    fn updateop_rewrites_are_semantic() {
        for op in BoolOp::all() {
            for f in bools() {
                for g in bools() {
                    assert_eq!(op.complement_output().eval(f, g), !op.eval(f, g));
                    assert_eq!(op.complement_first().eval(f, g), op.eval(!f, g));
                    assert_eq!(op.complement_second().eval(f, g), op.eval(f, !g));
                    assert_eq!(op.swap_operands().eval(f, g), op.eval(g, f));
                }
            }
        }
    }

    #[test]
    fn rewrites_are_involutions() {
        for op in BoolOp::all() {
            assert_eq!(op.complement_output().complement_output(), op);
            assert_eq!(op.complement_first().complement_first(), op);
            assert_eq!(op.complement_second().complement_second(), op);
            assert_eq!(op.swap_operands().swap_operands(), op);
        }
    }

    #[test]
    fn trivial_reductions_match_semantics() {
        for op in BoolOp::all() {
            for x in bools() {
                let expect = op.eval(x, x);
                let got = match op.on_equal_operands() {
                    Unary::Zero => false,
                    Unary::One => true,
                    Unary::Identity => x,
                    Unary::Complement => !x,
                };
                assert_eq!(got, expect, "{op:?} on equal operands");

                let expect = op.eval(x, !x);
                let got = match op.on_complement_operands() {
                    Unary::Zero => false,
                    Unary::One => true,
                    Unary::Identity => x,
                    Unary::Complement => !x,
                };
                assert_eq!(got, expect, "{op:?} on complement operands");

                for c in bools() {
                    let expect = op.eval(c, x);
                    let got = match op.on_first_const(c) {
                        Unary::Zero => false,
                        Unary::One => true,
                        Unary::Identity => x,
                        Unary::Complement => !x,
                    };
                    assert_eq!(got, expect, "{op:?} with f={c}");

                    let expect = op.eval(x, c);
                    let got = match op.on_second_const(c) {
                        Unary::Zero => false,
                        Unary::One => true,
                        Unary::Identity => x,
                        Unary::Complement => !x,
                    };
                    assert_eq!(got, expect, "{op:?} with g={c}");
                }
            }
        }
    }

    #[test]
    fn from_table_rejects_wide_tables() {
        assert!(std::panic::catch_unwind(|| BoolOp::from_table(16)).is_err());
    }

    #[test]
    fn all_returns_distinct_ops() {
        let ops = BoolOp::all();
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}

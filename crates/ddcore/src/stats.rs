//! Collision / access statistics driving the adaptive behaviour of the
//! unique table (the paper's `{size × access-time}` quality metric).

/// Running statistics for one hash table.
#[derive(Debug, Clone, Copy, Default)]
pub struct TableStats {
    /// Number of lookup operations since the last reset.
    pub lookups: u64,
    /// Total number of chain links traversed by those lookups (a direct
    /// proxy for access time).
    pub probes: u64,
    /// Lookups that found their key.
    pub hits: u64,
    /// Number of times the table grew.
    pub resizes: u64,
    /// Number of times the hash function was re-arranged.
    pub rearrangements: u64,
    /// Batched tombstone-compaction sweeps run by the deferred-repair
    /// deletion regime (small open-addressed tables only).
    pub batched_repairs: u64,
}

impl TableStats {
    /// Average probes per lookup (1.0 = perfect; larger = longer chains).
    #[must_use]
    pub fn avg_probe_length(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.probes as f64 / self.lookups as f64
        }
    }

    /// Fraction of lookups that hit.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Accumulate another table's counters into this one (used by the
    /// managers to aggregate across per-level subtables).
    pub fn absorb(&mut self, other: &TableStats) {
        self.lookups += other.lookups;
        self.probes += other.probes;
        self.hits += other.hits;
        self.resizes += other.resizes;
        self.rearrangements += other.rearrangements;
        self.batched_repairs += other.batched_repairs;
    }

    /// Reset the windowed counters (kept: resizes, rearrangements).
    pub fn reset_window(&mut self) {
        self.lookups = 0;
        self.probes = 0;
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_length_and_hit_rate() {
        let mut s = TableStats::default();
        assert_eq!(s.avg_probe_length(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        s.lookups = 10;
        s.probes = 25;
        s.hits = 4;
        assert!((s.avg_probe_length() - 2.5).abs() < 1e-12);
        assert!((s.hit_rate() - 0.4).abs() < 1e-12);
        s.resizes = 2;
        s.reset_window();
        assert_eq!(s.lookups, 0);
        assert_eq!(s.resizes, 2);
    }
}

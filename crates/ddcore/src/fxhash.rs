//! A minimal Fx-style hasher for hot internal hash maps (the multiplicative
//! hash popularized by Firefox/rustc). Non-cryptographic, deterministic,
//! dependency-free — used by the swap staging tables and operation memos
//! where SipHash overhead is measurable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiplicative word-at-a-time hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u64), u32> = FxHashMap::default();
        for i in 0..10_000u32 {
            m.insert((i, (i as u64) << 13), i * 3);
        }
        for i in 0..10_000u32 {
            assert_eq!(m.get(&(i, (i as u64) << 13)), Some(&(i * 3)));
        }
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut hs = FxHasher::default();
            hs.write_u64(x);
            hs.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}

//! Dynamic variable ordering: pluggable reorder strategies, adaptive
//! schedules and the shared group-sifting engine.
//!
//! Before this module existed, Rudell sifting was written twice — once per
//! manager crate — and exposed only as a monolithic end-of-build `sift()`.
//! The DATE 2014 paper's whole premise is that the *variable order* (for
//! BBDDs: the chained variable pairs) is the lever for compactness, so
//! ordering deserves the same first-class treatment the storage layer got:
//!
//! * [`ReorderBackend`] — the five primitives a manager exposes so the
//!   generic engine can sift it: positions, adjacent swaps, a GC sweep and
//!   level widths (plus an optional *chain-affinity* signal, see below).
//!   Both `bbdd::Bbdd` and `robdd::Robdd` implement this; their crates'
//!   public sift entry points are thin wrappers over the engine here.
//! * [`ReorderStrategy`] — the pluggable algorithm: [`FullSift`] (classic
//!   Rudell), [`WindowSift`] (exploration clamped to a radius around each
//!   variable's start position — bounded work on large orders) and
//!   [`PairSift`] (variables move as *pairs* chosen by chain affinity —
//!   the BBDD-specific strategy, see below). [`DvoStrategy`] is the
//!   CLI-parseable value form dispatching to the three.
//! * [`ReorderSchedule`] / [`DvoPolicy`] / [`DvoState`] — *when* to
//!   reorder: never, past an absolute live-node threshold (the legacy
//!   `set_auto_reorder` discipline), on a live-node growth factor, or
//!   after every N node creations. The managers consult their [`DvoState`]
//!   at the PR 4 GC-latch boundary and at the network builders' collection
//!   gates, so reordering triggers adaptively *during* long builds.
//!
//! # Pair-aware sifting (BBDD chains)
//!
//! A biconditional node at chain level `l` branches on `PV ⊕ SV` — it
//! couples the variable at order position `p` with the one at `p + 1`.
//! Moving one of them away by classic sifting breaks every such
//! biconditional pair crossing the cut, which is why plain sifting tends
//! to undo exactly the chain structure that makes BBDDs compact on
//! XOR-rich circuits. [`PairSift`] asks the backend for the fraction of
//! biconditional (non-Shannon) nodes at each boundary
//! ([`ReorderBackend::pair_affinity`]), greedily locks high-affinity
//! adjacent pairs together, and sifts each pair as one rigid group of two
//! (two adjacent swaps per order position). The ROBDD backend reports a
//! structural analogue (fraction of nodes with a cofactor pointing
//! directly at the next variable), so the strategy is meaningful — if less
//! decisive — there too.
//!
//! # Abort safety
//!
//! Every engine entry point takes an [`OpBudget`] and polls it before each
//! group move. On abort the group being sifted is first parked back at the
//! best position seen (a bounded amount of un-budgeted work, at most one
//! sweep across the order), so the backend is always left with a
//! consistent variable order and canonical tables — the contract
//! established by `sift_bounded` and relied on by the scheduled-reorder
//! hooks in `try_build_network`.

use crate::govern::{OpAbort, OpBudget};

/// The reordering primitives a manager exposes to the generic engine.
///
/// Positions are **top-based**: position `0` is the root level of the
/// diagram. The engine only ever issues adjacent swaps, so canonicity is
/// the backend's local swap correctness — the engine never sees edges.
pub trait ReorderBackend {
    /// Number of variables in the order.
    fn num_vars(&self) -> usize;

    /// Top-based position of `var` in the current order.
    fn position_of(&self, var: usize) -> usize;

    /// The variable at top-based position `pos`.
    fn var_at_position(&self, pos: usize) -> usize;

    /// Swap the variables at positions `pos` and `pos + 1` in place; every
    /// existing edge keeps denoting the same function.
    fn swap_positions(&mut self, pos: usize);

    /// Collect garbage (tracing the backend's handle registry) and return
    /// the exact live node count. Swaps strand dead nodes, and dead nodes
    /// *compound* — each subsequent swap rebuilds them along with the live
    /// ones — so the engine sweeps after every group move and uses the
    /// returned exact count for its position decisions.
    fn sweep(&mut self) -> usize;

    /// Nodes currently stored whose branching variable is `var`.
    fn var_width(&self, var: usize) -> usize;

    /// Chain affinity across the boundary below position `pos`: the
    /// fraction (`0.0..=1.0`) of nodes at `pos` that structurally couple
    /// the variable at `pos` with the one at `pos + 1`. BBDDs report the
    /// biconditional-node fraction of the level; ROBDDs the fraction of
    /// nodes with a direct cofactor into the next variable. The default
    /// (`0.0`) makes [`PairSift`] degenerate to singleton sifting.
    fn pair_affinity(&self, _pos: usize) -> f64 {
        0.0
    }
}

/// Tuning knobs shared by every sifting strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiftParams {
    /// Abort a direction when the diagram grows beyond
    /// `max_growth × best_size` (CUDD's classic 1.2).
    pub max_growth: f64,
    /// Number of complete passes over all variables (or groups).
    pub passes: usize,
}

impl Default for SiftParams {
    fn default() -> Self {
        SiftParams {
            max_growth: 1.2,
            passes: 1,
        }
    }
}

/// Move the rigid group occupying positions `top .. top + len` one order
/// position down (or up), preserving the order within the group.
///
/// One group step costs `len` adjacent swaps: moving down hoists the
/// variable below the group over every member (bottom swap first), moving
/// up sinks the variable above it (top swap first).
fn move_group<B: ReorderBackend>(b: &mut B, top: usize, len: usize, down: bool) {
    if down {
        for i in (0..len).rev() {
            b.swap_positions(top + i);
        }
    } else {
        for i in 0..len {
            b.swap_positions(top - 1 + i);
        }
    }
}

/// Sift one rigid group (1 or 2 variables today; the engine is written for
/// any contiguous `len`) through the order and park it at the best
/// position seen. `window` clamps exploration to `start ± window`.
///
/// On abort the group is parked back (un-budgeted, at most one sweep
/// across the order) before the error is returned, so the order is always
/// left consistent.
fn sift_group<B: ReorderBackend>(
    b: &mut B,
    lead_var: usize,
    len: usize,
    window: Option<usize>,
    params: &SiftParams,
    budget: &mut OpBudget,
) -> Result<(), OpAbort> {
    let n = b.num_vars();
    if len >= n {
        return Ok(());
    }
    let start = b.position_of(lead_var);
    let mut best_size = b.sweep();
    let mut best_top = start;
    let limit = |best: usize| (best as f64 * params.max_growth) as usize + 2;
    let in_window = |top: usize| match window {
        Some(w) => top.abs_diff(start) <= w,
        None => true,
    };

    // Visit the nearer end first to minimize swap work.
    let directions: [bool; 2] = if start >= n / 2 {
        [true, false]
    } else {
        [false, true]
    };
    // On abort we fall through to the park-back loop below before
    // returning the error, so the order is always left consistent.
    let mut abort: Option<OpAbort> = None;
    'exploration: for &down in &directions {
        loop {
            let top = b.position_of(lead_var);
            if down && top + len >= n {
                break;
            }
            if !down && top == 0 {
                break;
            }
            let next_top = if down { top + 1 } else { top - 1 };
            if !in_window(next_top) {
                break;
            }
            if let Err(reason) = budget.checkpoint() {
                abort = Some(reason);
                break 'exploration;
            }
            move_group(b, top, len, down);
            let size = b.sweep();
            if size < best_size {
                best_size = size;
                best_top = next_top;
            }
            if size > limit(best_size) {
                break;
            }
        }
    }
    // Return to the best position (un-budgeted: at most one sweep).
    loop {
        let top = b.position_of(lead_var);
        match top.cmp(&best_top) {
            std::cmp::Ordering::Less => move_group(b, top, len, true),
            std::cmp::Ordering::Greater => move_group(b, top, len, false),
            std::cmp::Ordering::Equal => break,
        }
    }
    b.sweep();
    match abort {
        Some(reason) => Err(reason),
        None => Ok(()),
    }
}

/// One full pass over `groups` (each a contiguous run of variables given
/// top-to-bottom, widest group first), sifting each in turn.
fn sift_pass<B: ReorderBackend>(
    b: &mut B,
    groups: &[(usize, usize)], // (lead variable, group length)
    window: Option<usize>,
    params: &SiftParams,
    budget: &mut OpBudget,
) -> Result<(), OpAbort> {
    for &(lead, len) in groups {
        sift_group(b, lead, len, window, params, budget)?;
    }
    Ok(())
}

/// Singleton groups for all variables, processed by decreasing level
/// population (the classic heuristic: the widest level has the most to
/// gain), position as the deterministic tie-break.
fn singleton_groups<B: ReorderBackend>(b: &B) -> Vec<(usize, usize)> {
    let mut groups: Vec<(usize, usize)> = (0..b.num_vars()).map(|v| (v, 1)).collect();
    groups.sort_by_key(|&(v, _)| (std::cmp::Reverse(b.var_width(v)), b.position_of(v)));
    groups
}

/// A pluggable reordering algorithm, generic over any [`ReorderBackend`].
///
/// Strategies are value types (the three shipped ones are `Copy` configs);
/// [`DvoStrategy`] is the erased, parseable form policies and CLIs carry.
pub trait ReorderStrategy {
    /// Stable identifier (the CLI token).
    fn name(&self) -> &'static str;

    /// Run the strategy to completion under `budget`, returning the live
    /// node count after the final sweep.
    ///
    /// # Errors
    /// The budget's abort reason; the backend's order is consistent (the
    /// group being sifted was parked back) when this returns `Err`.
    fn reorder<B: ReorderBackend>(
        &self,
        b: &mut B,
        budget: &mut OpBudget,
    ) -> Result<usize, OpAbort>;
}

/// Classic Rudell sifting: every variable moves alone through all
/// positions and parks at its best.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FullSift {
    /// Shared sifting knobs.
    pub params: SiftParams,
}

impl ReorderStrategy for FullSift {
    fn name(&self) -> &'static str {
        "full"
    }

    fn reorder<B: ReorderBackend>(
        &self,
        b: &mut B,
        budget: &mut OpBudget,
    ) -> Result<usize, OpAbort> {
        // Span covers the whole strategy run; an abort (`?`) drops it
        // without the live-count arg, which is how a cut-short reorder
        // reads in a trace.
        let mut span = crate::obs::span(crate::obs::Op::Reorder);
        for _ in 0..self.params.passes.max(1) {
            if b.num_vars() < 2 {
                break;
            }
            let groups = singleton_groups(b);
            sift_pass(b, &groups, None, &self.params, budget)?;
        }
        let live = b.sweep();
        span.set_arg("live_nodes", live as u64);
        Ok(live)
    }
}

/// Bounded sifting: like [`FullSift`] but each variable explores only
/// `radius` positions around where it started — `O(n · radius)` swaps per
/// pass instead of `O(n²)`, the right trade on wide orders or when
/// reordering runs on a schedule mid-build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSift {
    /// Exploration radius around each variable's start position.
    pub radius: usize,
    /// Shared sifting knobs.
    pub params: SiftParams,
}

impl Default for WindowSift {
    fn default() -> Self {
        WindowSift {
            radius: 2,
            params: SiftParams::default(),
        }
    }
}

impl ReorderStrategy for WindowSift {
    fn name(&self) -> &'static str {
        "window"
    }

    fn reorder<B: ReorderBackend>(
        &self,
        b: &mut B,
        budget: &mut OpBudget,
    ) -> Result<usize, OpAbort> {
        let mut span = crate::obs::span(crate::obs::Op::Reorder);
        for _ in 0..self.params.passes.max(1) {
            if b.num_vars() < 2 {
                break;
            }
            let groups = singleton_groups(b);
            sift_pass(b, &groups, Some(self.radius.max(1)), &self.params, budget)?;
        }
        let live = b.sweep();
        span.set_arg("live_nodes", live as u64);
        Ok(live)
    }
}

/// Pair-aware sifting: adjacent variables whose boundary carries a high
/// chain affinity ([`ReorderBackend::pair_affinity`]) are locked into
/// rigid pairs and sifted as units, so the biconditional pairs that make a
/// BBDD compact are never split by the sift itself. Unpaired variables
/// sift alone as usual.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairSift {
    /// Minimum affinity for two adjacent variables to be locked together.
    pub min_affinity: f64,
    /// Shared sifting knobs.
    pub params: SiftParams,
}

impl Default for PairSift {
    fn default() -> Self {
        PairSift {
            min_affinity: 0.5,
            params: SiftParams::default(),
        }
    }
}

impl PairSift {
    /// Greedy disjoint pairing by descending affinity, then singletons for
    /// the rest; groups ordered by total width (position tie-break).
    fn groups<B: ReorderBackend>(&self, b: &B) -> Vec<(usize, usize)> {
        let n = b.num_vars();
        let mut boundaries: Vec<(usize, f64)> = (0..n.saturating_sub(1))
            .map(|p| (p, b.pair_affinity(p)))
            .filter(|&(_, a)| a >= self.min_affinity)
            .collect();
        boundaries.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        let mut used = vec![false; n];
        let mut groups: Vec<(usize, usize)> = Vec::new();
        for (p, _) in boundaries {
            if !used[p] && !used[p + 1] {
                used[p] = true;
                used[p + 1] = true;
                groups.push((b.var_at_position(p), 2));
            }
        }
        for (p, taken) in used.iter().enumerate() {
            if !taken {
                groups.push((b.var_at_position(p), 1));
            }
        }
        let width = |lead: usize, len: usize| {
            let top = b.position_of(lead);
            (0..len)
                .map(|i| b.var_width(b.var_at_position(top + i)))
                .sum::<usize>()
        };
        groups
            .sort_by_key(|&(lead, len)| (std::cmp::Reverse(width(lead, len)), b.position_of(lead)));
        groups
    }
}

impl ReorderStrategy for PairSift {
    fn name(&self) -> &'static str {
        "pair"
    }

    fn reorder<B: ReorderBackend>(
        &self,
        b: &mut B,
        budget: &mut OpBudget,
    ) -> Result<usize, OpAbort> {
        let mut span = crate::obs::span(crate::obs::Op::Reorder);
        for _ in 0..self.params.passes.max(1) {
            if b.num_vars() < 2 {
                break;
            }
            // Pairing is recomputed per pass from the *current* order and
            // node population — an earlier pass (or a previous scheduled
            // reorder) changes both.
            let groups = self.groups(b);
            sift_pass(b, &groups, None, &self.params, budget)?;
        }
        let live = b.sweep();
        span.set_arg("live_nodes", live as u64);
        Ok(live)
    }
}

/// The value form of a reorder strategy: what policies store, CLIs parse
/// and the trait-level `reorder_with` takes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DvoStrategy {
    /// Classic Rudell sifting ([`FullSift`]).
    Full,
    /// Window sifting with the given radius ([`WindowSift`]).
    Window(usize),
    /// Pair-aware group sifting ([`PairSift`] at its default affinity).
    Pair,
}

impl DvoStrategy {
    /// Dispatch to the concrete [`ReorderStrategy`].
    ///
    /// # Errors
    /// The budget's abort reason (order left consistent).
    pub fn run<B: ReorderBackend>(
        &self,
        b: &mut B,
        budget: &mut OpBudget,
    ) -> Result<usize, OpAbort> {
        match *self {
            DvoStrategy::Full => FullSift::default().reorder(b, budget),
            DvoStrategy::Window(radius) => WindowSift {
                radius,
                ..WindowSift::default()
            }
            .reorder(b, budget),
            DvoStrategy::Pair => PairSift::default().reorder(b, budget),
        }
    }
}

impl std::fmt::Display for DvoStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DvoStrategy::Full => write!(f, "full"),
            DvoStrategy::Window(r) => write!(f, "window{r}"),
            DvoStrategy::Pair => write!(f, "pair"),
        }
    }
}

impl std::str::FromStr for DvoStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "full" => Ok(DvoStrategy::Full),
            "pair" => Ok(DvoStrategy::Pair),
            "window" => Ok(DvoStrategy::Window(WindowSift::default().radius)),
            _ => {
                if let Some(r) = s.strip_prefix("window") {
                    let radius: usize = r
                        .parse()
                        .map_err(|_| format!("bad window radius in {s:?}"))?;
                    if radius == 0 {
                        return Err("window radius must be positive".into());
                    }
                    Ok(DvoStrategy::Window(radius))
                } else {
                    Err(format!(
                        "unknown strategy {s:?} (expected full, window[N] or pair)"
                    ))
                }
            }
        }
    }
}

/// When a policy's strategy fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReorderSchedule {
    /// Only explicit `reorder*` calls — the policy's strategy still picks
    /// the algorithm they run.
    Never,
    /// Fire once the live node count reaches an absolute threshold; after
    /// each firing the threshold re-arms at twice the post-reorder size
    /// (the legacy `set_auto_reorder` discipline).
    NodeThreshold(usize),
    /// Fire when the live node count has grown by this factor since the
    /// last reorder (or since the policy was installed).
    GrowthFactor(f64),
    /// Fire after this many node creations since the last reorder.
    EveryCreations(u64),
}

impl std::fmt::Display for ReorderSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReorderSchedule::Never => write!(f, "never"),
            ReorderSchedule::NodeThreshold(n) => write!(f, "thresh{n}"),
            ReorderSchedule::GrowthFactor(g) => write!(f, "growth{g}"),
            ReorderSchedule::EveryCreations(n) => write!(f, "nodes{n}"),
        }
    }
}

impl std::str::FromStr for ReorderSchedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if s == "never" {
            return Ok(ReorderSchedule::Never);
        }
        if s == "growth" {
            return Ok(ReorderSchedule::GrowthFactor(2.0));
        }
        if let Some(rest) = s.strip_prefix("growth") {
            let f: f64 = rest
                .parse()
                .map_err(|_| format!("bad growth factor in {s:?}"))?;
            if f <= 1.0 {
                return Err("growth factor must exceed 1".into());
            }
            return Ok(ReorderSchedule::GrowthFactor(f));
        }
        if let Some(rest) = s.strip_prefix("thresh") {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad threshold in {s:?}"))?;
            return Ok(ReorderSchedule::NodeThreshold(n.max(1)));
        }
        if let Some(rest) = s.strip_prefix("nodes") {
            let n: u64 = rest
                .parse()
                .map_err(|_| format!("bad creation count in {s:?}"))?;
            return Ok(ReorderSchedule::EveryCreations(n.max(1)));
        }
        Err(format!(
            "unknown schedule {s:?} (expected never, thresh<N>, growth[<F>] or nodes<N>)"
        ))
    }
}

/// A complete dynamic-reordering policy: which algorithm, fired when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvoPolicy {
    /// The algorithm scheduled firings (and explicit `reorder()` calls on
    /// a policy-carrying manager) run.
    pub strategy: DvoStrategy,
    /// When scheduled firings happen.
    pub schedule: ReorderSchedule,
}

impl std::fmt::Display for DvoPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.strategy, self.schedule)
    }
}

impl std::str::FromStr for DvoPolicy {
    type Err = String;

    /// Parse `<strategy>[:<schedule>]`; a missing schedule defaults to
    /// `growth2` (a bare `--dvo pair` means "reorder adaptively").
    fn from_str(s: &str) -> Result<Self, String> {
        let (strat, sched) = match s.split_once(':') {
            Some((a, b)) => (a, b.parse::<ReorderSchedule>()?),
            None => (s, ReorderSchedule::GrowthFactor(2.0)),
        };
        Ok(DvoPolicy {
            strategy: strat.parse()?,
            schedule: sched,
        })
    }
}

/// Per-manager schedule bookkeeping: the installed policy plus the
/// baselines its schedule measures growth against. Embedded in each
/// manager next to the GC latch (same pattern as
/// [`crate::roots::GcLatch`]).
#[derive(Debug, Default, Clone)]
pub struct DvoState {
    policy: Option<DvoPolicy>,
    /// Live-node re-arm point for [`ReorderSchedule::NodeThreshold`].
    thresh_arm: usize,
    /// Live count after the last reorder (growth-factor baseline).
    baseline_live: usize,
    /// `nodes_created` at the last reorder (creation-count baseline).
    created_mark: u64,
    /// Scheduled firings so far (observability; tests assert on it).
    reorders: u64,
}

impl DvoState {
    /// Install (or clear) the policy, resetting every schedule baseline to
    /// the manager's current counters.
    pub fn set_policy(&mut self, policy: Option<DvoPolicy>, live: usize, created: u64) {
        self.policy = policy;
        self.thresh_arm = match policy.map(|p| p.schedule) {
            Some(ReorderSchedule::NodeThreshold(n)) => n,
            _ => 0,
        };
        self.baseline_live = live;
        self.created_mark = created;
    }

    /// The installed policy.
    #[must_use]
    pub fn policy(&self) -> Option<DvoPolicy> {
        self.policy
    }

    /// The installed policy's strategy (for explicit `reorder()` calls).
    #[must_use]
    pub fn strategy(&self) -> Option<DvoStrategy> {
        self.policy.map(|p| p.strategy)
    }

    /// Scheduled reorders run so far.
    #[must_use]
    pub fn reorders(&self) -> u64 {
        self.reorders
    }

    /// Should a scheduled reorder fire, given the manager's current live
    /// node count and cumulative creation counter?
    #[must_use]
    pub fn due(&self, live: usize, created: u64) -> bool {
        match self.policy.map(|p| p.schedule) {
            None | Some(ReorderSchedule::Never) => false,
            Some(ReorderSchedule::NodeThreshold(_)) => live >= self.thresh_arm,
            Some(ReorderSchedule::GrowthFactor(f)) => {
                // An 8-node floor keeps sink-only managers from thrashing.
                live >= (self.baseline_live.max(8) as f64 * f) as usize
            }
            Some(ReorderSchedule::EveryCreations(n)) => {
                created.saturating_sub(self.created_mark) >= n
            }
        }
    }

    /// Re-arm every baseline after a reorder ran (or was aborted — an
    /// aborted scheduled sift still consumed its trigger, otherwise the
    /// very next operation boundary would fire and abort it again).
    pub fn note_reorder(&mut self, live: usize, created: u64) {
        self.reorders += 1;
        self.thresh_arm = (live * 2).max(self.thresh_arm);
        self.baseline_live = live;
        self.created_mark = created;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A permutation-only backend: no nodes, every order equally good.
    /// Exercises the engine's movement/bookkeeping, not its size decisions.
    struct PermBackend {
        var_at_pos: Vec<usize>,
        pos_of_var: Vec<usize>,
        swaps: usize,
        widths: Vec<usize>,
        affinity: Vec<f64>,
    }

    impl PermBackend {
        fn new(n: usize) -> Self {
            PermBackend {
                var_at_pos: (0..n).collect(),
                pos_of_var: (0..n).collect(),
                swaps: 0,
                widths: vec![1; n],
                affinity: vec![0.0; n.saturating_sub(1)],
            }
        }
    }

    impl ReorderBackend for PermBackend {
        fn num_vars(&self) -> usize {
            self.var_at_pos.len()
        }
        fn position_of(&self, var: usize) -> usize {
            self.pos_of_var[var]
        }
        fn var_at_position(&self, pos: usize) -> usize {
            self.var_at_pos[pos]
        }
        fn swap_positions(&mut self, pos: usize) {
            self.var_at_pos.swap(pos, pos + 1);
            self.pos_of_var[self.var_at_pos[pos]] = pos;
            self.pos_of_var[self.var_at_pos[pos + 1]] = pos + 1;
            self.swaps += 1;
        }
        fn sweep(&mut self) -> usize {
            self.widths.iter().sum()
        }
        fn var_width(&self, var: usize) -> usize {
            self.widths[var]
        }
        fn pair_affinity(&self, pos: usize) -> f64 {
            self.affinity[pos]
        }
    }

    fn is_permutation(b: &PermBackend) -> bool {
        let mut seen: Vec<usize> = b.var_at_pos.clone();
        seen.sort_unstable();
        seen == (0..b.num_vars()).collect::<Vec<_>>()
    }

    #[test]
    fn every_strategy_preserves_the_permutation() {
        for strategy in [DvoStrategy::Full, DvoStrategy::Window(2), DvoStrategy::Pair] {
            let mut b = PermBackend::new(6);
            b.affinity = vec![0.9, 0.1, 0.9, 0.1, 0.9];
            strategy
                .run(&mut b, &mut OpBudget::unlimited())
                .expect("unlimited budget");
            assert!(is_permutation(&b), "{strategy}: {:?}", b.var_at_pos);
            // Equal sizes everywhere: every variable parks where it began.
            assert_eq!(b.var_at_pos, (0..6).collect::<Vec<_>>(), "{strategy}");
        }
    }

    #[test]
    fn pair_groups_are_disjoint_and_affinity_ranked() {
        let mut b = PermBackend::new(6);
        b.affinity = vec![0.9, 0.8, 0.2, 0.9, 0.0];
        let groups = PairSift::default().groups(&b);
        // Boundary 0 (0.9) pairs (0,1); boundary 1 conflicts; boundary 3
        // (0.9) pairs (3,4); the rest are singletons.
        let pairs: Vec<(usize, usize)> = groups.iter().copied().filter(|&(_, l)| l == 2).collect();
        assert_eq!(pairs, vec![(0, 2), (3, 2)]);
        let singles: Vec<usize> = groups
            .iter()
            .filter(|&&(_, l)| l == 1)
            .map(|&(v, _)| v)
            .collect();
        assert_eq!(singles, vec![2, 5]);
    }

    #[test]
    fn aborted_sift_parks_back_and_reports() {
        let mut b = PermBackend::new(8);
        let mut budget = OpBudget::unlimited().inject_cancel_at(3);
        let res = FullSift::default().reorder(&mut b, &mut budget);
        assert_eq!(res, Err(OpAbort::Cancelled));
        assert!(is_permutation(&b));
        assert_eq!(b.var_at_pos, (0..8).collect::<Vec<_>>(), "parked back");
    }

    #[test]
    fn moving_a_pair_preserves_inner_order() {
        let mut b = PermBackend::new(5);
        move_group(&mut b, 0, 2, true); // [0,1] down past 2
        assert_eq!(b.var_at_pos, vec![2, 0, 1, 3, 4]);
        move_group(&mut b, 1, 2, true);
        assert_eq!(b.var_at_pos, vec![2, 3, 0, 1, 4]);
        move_group(&mut b, 2, 2, false);
        assert_eq!(b.var_at_pos, vec![2, 0, 1, 3, 4]);
        assert_eq!(b.swaps, 6, "two swaps per pair step");
    }

    #[test]
    fn parsing_round_trips() {
        for s in ["full", "window3", "pair"] {
            let strat: DvoStrategy = s.parse().unwrap();
            assert_eq!(strat.to_string(), s);
        }
        assert_eq!(
            "window".parse::<DvoStrategy>().unwrap(),
            DvoStrategy::Window(2)
        );
        for s in ["never", "thresh100", "growth1.5", "nodes4096"] {
            let sched: ReorderSchedule = s.parse().unwrap();
            assert_eq!(sched.to_string(), s);
        }
        let p: DvoPolicy = "pair:nodes256".parse().unwrap();
        assert_eq!(p.strategy, DvoStrategy::Pair);
        assert_eq!(p.schedule, ReorderSchedule::EveryCreations(256));
        let bare: DvoPolicy = "full".parse().unwrap();
        assert_eq!(bare.schedule, ReorderSchedule::GrowthFactor(2.0));
        assert!("bogus".parse::<DvoStrategy>().is_err());
        assert!("growth0.5".parse::<ReorderSchedule>().is_err());
        assert!("window0".parse::<DvoStrategy>().is_err());
    }

    #[test]
    fn schedule_state_fires_and_rearms() {
        let mut st = DvoState::default();
        assert!(!st.due(1 << 20, 1 << 20), "no policy, never due");
        st.set_policy(
            Some(DvoPolicy {
                strategy: DvoStrategy::Full,
                schedule: ReorderSchedule::NodeThreshold(100),
            }),
            10,
            0,
        );
        assert!(!st.due(99, 0));
        assert!(st.due(100, 0));
        st.note_reorder(80, 0);
        assert!(!st.due(120, 0), "re-armed at 2x the post-reorder size");
        assert!(st.due(160, 0));

        st.set_policy(
            Some(DvoPolicy {
                strategy: DvoStrategy::Pair,
                schedule: ReorderSchedule::GrowthFactor(2.0),
            }),
            50,
            0,
        );
        assert!(!st.due(99, 0));
        assert!(st.due(100, 0));

        st.set_policy(
            Some(DvoPolicy {
                strategy: DvoStrategy::Full,
                schedule: ReorderSchedule::EveryCreations(1000),
            }),
            0,
            5000,
        );
        assert!(!st.due(0, 5999));
        assert!(st.due(0, 6000));
        st.note_reorder(0, 6100);
        assert!(!st.due(0, 7099));
        assert!(st.due(0, 7100));
        assert_eq!(st.reorders(), 2);
    }
}

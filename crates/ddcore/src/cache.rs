//! The *computed table*: a direct-mapped, overwrite-on-collision cache of
//! performed Boolean operations (paper §IV-A3: "in the computed table, the
//! cache-like approach overwrites an entry when collision occurs").
//!
//! Entries are keyed by two 64-bit operand words plus a small operation tag,
//! which is wide enough for binary `apply` (two edges + operator truth
//! table) and ternary `ite` (edge + two packed edges). The cache grows
//! geometrically while it is being used productively, up to a cap.

use crate::cantor::CantorHasher;

#[derive(Debug, Clone, Copy)]
struct Slot {
    k1: u64,
    k2: u64,
    tag: u32,
    epoch: u32,
    val: u64,
}

const EMPTY_TAG: u32 = u32::MAX;

/// Direct-mapped computed table.
///
/// ```
/// use ddcore::ComputedCache;
/// let mut c = ComputedCache::new(1 << 8);
/// c.insert(1, 2, 3, 99);
/// assert_eq!(c.get(1, 2, 3), Some(99));
/// assert_eq!(c.get(1, 2, 4), None);
/// ```
#[derive(Debug, Clone)]
pub struct ComputedCache {
    slots: Vec<Slot>,
    hasher: CantorHasher,
    epoch: u32,
    lookups: u64,
    hits: u64,
    inserts_since_resize: u64,
    max_slots: usize,
}

impl Default for ComputedCache {
    fn default() -> Self {
        Self::new(1 << 14)
    }
}

impl ComputedCache {
    /// Hard cap on cache size (slots); 2^22 slots ≈ 128 MiB.
    pub const DEFAULT_MAX_SLOTS: usize = 1 << 22;

    /// Create a cache with `slots` entries (rounded up to a power of two).
    #[must_use]
    pub fn new(slots: usize) -> Self {
        let n = slots.next_power_of_two().max(16);
        Self {
            slots: vec![
                Slot {
                    k1: 0,
                    k2: 0,
                    tag: EMPTY_TAG,
                    epoch: 0,
                    val: 0
                };
                n
            ],
            hasher: CantorHasher::new(),
            epoch: 0,
            lookups: 0,
            hits: 0,
            inserts_since_resize: 0,
            max_slots: Self::DEFAULT_MAX_SLOTS,
        }
    }

    /// Create a cache with a custom growth cap (used by the ablation bench).
    #[must_use]
    pub fn with_max(slots: usize, max_slots: usize) -> Self {
        let mut c = Self::new(slots);
        c.max_slots = max_slots.next_power_of_two();
        c
    }

    /// Number of slots currently allocated.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Lifetime hit rate.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    #[inline]
    fn index(&self, k1: u64, k2: u64, tag: u32) -> usize {
        (self.hasher.hash3(k1, k2, tag as u64) % self.slots.len() as u64) as usize
    }

    /// Look up a previously computed result.
    #[inline]
    pub fn get(&mut self, k1: u64, k2: u64, tag: u32) -> Option<u64> {
        self.lookups += 1;
        let s = &self.slots[self.index(k1, k2, tag)];
        if s.tag == tag && s.epoch == self.epoch && s.k1 == k1 && s.k2 == k2 {
            self.hits += 1;
            Some(s.val)
        } else {
            None
        }
    }

    /// Record a computed result, overwriting whatever the slot held.
    ///
    /// # Panics
    /// Panics if `tag == u32::MAX`, which is reserved for empty slots.
    #[inline]
    pub fn insert(&mut self, k1: u64, k2: u64, tag: u32, val: u64) {
        assert_ne!(tag, EMPTY_TAG, "tag u32::MAX is reserved");
        let idx = self.index(k1, k2, tag);
        let epoch = self.epoch;
        self.slots[idx] = Slot {
            k1,
            k2,
            tag,
            epoch,
            val,
        };
        self.inserts_since_resize += 1;
        if self.inserts_since_resize > 4 * self.slots.len() as u64
            && self.slots.len() < self.max_slots
        {
            self.grow();
        }
    }

    /// Invalidate every entry (mandatory after garbage collection, because
    /// freed node ids may be re-used). O(1): bumps the cache epoch; stale
    /// entries die lazily on lookup.
    pub fn invalidate(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        self.inserts_since_resize = 0;
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                Slot {
                    k1: 0,
                    k2: 0,
                    tag: EMPTY_TAG,
                    epoch: 0,
                    val: 0
                };
                new_len
            ],
        );
        for s in old {
            if s.tag != EMPTY_TAG && s.epoch == self.epoch {
                let idx = self.index(s.k1, s.k2, s.tag);
                self.slots[idx] = s;
            }
        }
        self.inserts_since_resize = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip() {
        let mut c = ComputedCache::new(64);
        for i in 0..1000u64 {
            c.insert(i, i * 3, (i % 7) as u32, i + 42);
        }
        // Direct-mapped: *some* entries survive; whatever survives is correct.
        let mut survived = 0;
        for i in 0..1000u64 {
            if let Some(v) = c.get(i, i * 3, (i % 7) as u32) {
                assert_eq!(v, i + 42);
                survived += 1;
            }
        }
        assert!(survived > 0);
    }

    #[test]
    fn collision_overwrites_not_chains() {
        let mut c = ComputedCache::with_max(16, 16);
        // Fill far beyond capacity; the cache must stay at 16 slots.
        for i in 0..10_000u64 {
            c.insert(i, i, 1, i);
        }
        assert_eq!(c.capacity(), 16);
    }

    #[test]
    fn grows_when_hot() {
        let mut c = ComputedCache::new(16);
        for i in 0..100_000u64 {
            c.insert(i, i ^ 0x5555, 2, i);
        }
        assert!(c.capacity() > 16);
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut c = ComputedCache::new(64);
        c.insert(1, 2, 3, 4);
        assert_eq!(c.get(1, 2, 3), Some(4));
        c.invalidate();
        assert_eq!(c.get(1, 2, 3), None);
    }

    #[test]
    fn distinct_tags_do_not_alias() {
        let mut c = ComputedCache::new(1 << 10);
        c.insert(7, 8, 1, 100);
        c.insert(7, 8, 2, 200);
        // Either both live (different slots) or the later overwrote the
        // earlier (same slot) — but a hit must never return the wrong tag's
        // value.
        if let Some(v) = c.get(7, 8, 1) {
            assert_eq!(v, 100);
        }
        assert_eq!(c.get(7, 8, 2), Some(200));
    }
}

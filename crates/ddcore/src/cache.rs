//! The *computed table*: a 2-way set-associative, overwrite-on-collision
//! cache of performed Boolean operations (paper §IV-A3: "in the computed
//! table, the cache-like approach overwrites an entry when collision
//! occurs").
//!
//! Entries are keyed by two 64-bit operand words plus a small operation tag,
//! which is wide enough for binary `apply` (two edges + operator truth
//! table) and ternary `ite` (edge + two packed edges). Each set holds two
//! 32-byte slots — one cache line — and a one-bit insertion age (stored in
//! a spare tag bit of the set's first way, so no extra memory is touched)
//! picks the victim on collision: a recent result is no longer destroyed
//! by a single conflicting insert, the failure mode of the seed's
//! direct-mapped cache. The cache grows geometrically while it is being
//! used productively, up to a cap.

use crate::cantor::CantorHasher;

#[derive(Debug, Clone, Copy)]
struct Slot {
    k1: u64,
    k2: u64,
    tag: u32,
    epoch: u32,
    val: u64,
}

const EMPTY_TAG: u32 = u32::MAX;

/// Spare bit in way 0's stored tag recording which way is older (set =
/// way 0 was written before way 1). Caller tags must stay below this bit.
const AGE_BIT: u32 = 1 << 30;
/// Mask clearing only the age bit. Bit 31 is deliberately kept: an empty
/// slot's tag (`u32::MAX`) must never compare equal to a caller tag, and
/// legal tags have bit 31 clear.
const TAG_MASK: u32 = !AGE_BIT;

const EMPTY_SLOT: Slot = Slot {
    k1: 0,
    k2: 0,
    tag: EMPTY_TAG,
    epoch: 0,
    val: 0,
};

/// Hit/miss/eviction counters for one computed table.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookup operations performed.
    pub lookups: u64,
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Results recorded.
    pub inserts: u64,
    /// Inserts that overwrote a *live* entry (both ways occupied).
    pub evictions: u64,
    /// Epoch bumps (whole-cache invalidations after GC).
    pub invalidations: u64,
}

impl CacheStats {
    /// Lookups that missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Lifetime hit rate.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Two-way set-associative computed table.
///
/// ```
/// use ddcore::ComputedCache;
/// let mut c = ComputedCache::new(1 << 8);
/// c.insert(1, 2, 3, 99);
/// assert_eq!(c.get(1, 2, 3), Some(99));
/// assert_eq!(c.get(1, 2, 4), None);
/// ```
#[derive(Debug, Clone)]
pub struct ComputedCache {
    /// `2 * sets` slots; set `s` owns slots `2s` and `2s + 1`.
    slots: Vec<Slot>,
    hasher: CantorHasher,
    epoch: u32,
    stats: CacheStats,
    inserts_since_resize: u64,
    max_slots: usize,
}

impl Default for ComputedCache {
    fn default() -> Self {
        Self::new(1 << 14)
    }
}

impl ComputedCache {
    /// Hard cap on cache size (slots); 2^22 slots ≈ 128 MiB.
    pub const DEFAULT_MAX_SLOTS: usize = 1 << 22;

    /// Create a cache with `slots` entries (rounded up to a power of two,
    /// minimum 16).
    #[must_use]
    pub fn new(slots: usize) -> Self {
        let n = slots.next_power_of_two().max(16);
        Self {
            slots: vec![EMPTY_SLOT; n],
            hasher: CantorHasher::new(),
            epoch: 0,
            stats: CacheStats::default(),
            inserts_since_resize: 0,
            max_slots: Self::DEFAULT_MAX_SLOTS,
        }
    }

    /// Create a cache with a custom growth cap (used by the ablation bench).
    #[must_use]
    pub fn with_max(slots: usize, max_slots: usize) -> Self {
        let mut c = Self::new(slots);
        c.max_slots = max_slots.next_power_of_two();
        c
    }

    /// Number of slots currently allocated.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Hit/miss/eviction counters since creation.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Lifetime hit rate.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }

    /// Base slot index of the set for a key.
    #[inline]
    fn set_base(&self, k1: u64, k2: u64, tag: u32) -> usize {
        let sets = self.slots.len() / 2;
        (self.hasher.hash3(k1, k2, tag as u64) as usize & (sets - 1)) * 2
    }

    /// Look up a previously computed result.
    #[inline]
    pub fn get(&mut self, k1: u64, k2: u64, tag: u32) -> Option<u64> {
        self.stats.lookups += 1;
        let base = self.set_base(k1, k2, tag);
        let epoch = self.epoch;
        let s0 = &self.slots[base];
        if s0.tag & TAG_MASK == tag && s0.epoch == epoch && s0.k1 == k1 && s0.k2 == k2 {
            self.stats.hits += 1;
            crate::obs::cache_access(tag, true);
            return Some(s0.val);
        }
        let s1 = &self.slots[base + 1];
        if s1.tag == tag && s1.epoch == epoch && s1.k1 == k1 && s1.k2 == k2 {
            self.stats.hits += 1;
            crate::obs::cache_access(tag, true);
            return Some(s1.val);
        }
        crate::obs::cache_access(tag, false);
        None
    }

    /// Record a computed result. Prefers an empty or stale way; otherwise
    /// evicts the way that was written longer ago (the set's age bit).
    ///
    /// # Panics
    /// Panics if `tag >= 2^30` (the top tag bits are reserved).
    #[inline]
    pub fn insert(&mut self, k1: u64, k2: u64, tag: u32, val: u64) {
        assert!(tag < AGE_BIT, "tags above 2^30 are reserved");
        let base = self.set_base(k1, k2, tag);
        let epoch = self.epoch;
        let way0 = self.slots[base];
        let way = if way0.tag == EMPTY_TAG || way0.epoch != epoch {
            0
        } else {
            let way1 = &self.slots[base + 1];
            if way1.tag == EMPTY_TAG || way1.epoch != epoch {
                1
            } else {
                self.stats.evictions += 1;
                usize::from(way0.tag & AGE_BIT == 0)
            }
        };
        if way == 0 {
            // Writing way 0: it is now the newer way; leave its age bit
            // clear.
            self.slots[base] = Slot {
                k1,
                k2,
                tag,
                epoch,
                val,
            };
        } else {
            self.slots[base + 1] = Slot {
                k1,
                k2,
                tag,
                epoch,
                val,
            };
            // Way 0 is now the older way.
            if way0.tag != EMPTY_TAG {
                self.slots[base].tag = way0.tag | AGE_BIT;
            }
        }
        self.stats.inserts += 1;
        self.inserts_since_resize += 1;
        if self.inserts_since_resize > 4 * self.slots.len() as u64
            && self.slots.len() < self.max_slots
        {
            self.grow();
        }
    }

    /// Invalidate every entry (mandatory after garbage collection, because
    /// freed node ids may be re-used). O(1): bumps the cache epoch; stale
    /// entries die lazily on lookup.
    pub fn invalidate(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        self.inserts_since_resize = 0;
        self.stats.invalidations += 1;
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_len]);
        for mut s in old {
            if s.tag != EMPTY_TAG && s.epoch == self.epoch {
                s.tag &= !AGE_BIT;
                let base = self.set_base(s.k1, s.k2, s.tag);
                let way = usize::from(
                    self.slots[base].tag != EMPTY_TAG && self.slots[base].epoch == self.epoch,
                );
                if way == 1 {
                    let t = self.slots[base].tag;
                    self.slots[base].tag = t | AGE_BIT;
                }
                self.slots[base + way] = s;
            }
        }
        self.inserts_since_resize = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip() {
        let mut c = ComputedCache::new(64);
        for i in 0..1000u64 {
            c.insert(i, i * 3, (i % 7) as u32, i + 42);
        }
        // Set-associative overwrite-on-collision: *some* entries survive;
        // whatever survives is correct.
        let mut survived = 0;
        for i in 0..1000u64 {
            if let Some(v) = c.get(i, i * 3, (i % 7) as u32) {
                assert_eq!(v, i + 42);
                survived += 1;
            }
        }
        assert!(survived > 0);
    }

    #[test]
    fn collision_overwrites_not_chains() {
        let mut c = ComputedCache::with_max(16, 16);
        // Fill far beyond capacity; the cache must stay at 16 slots.
        for i in 0..10_000u64 {
            c.insert(i, i, 1, i);
        }
        assert_eq!(c.capacity(), 16);
        assert!(c.stats().evictions > 0, "full sets must evict");
    }

    #[test]
    fn grows_when_hot() {
        let mut c = ComputedCache::new(16);
        for i in 0..100_000u64 {
            c.insert(i, i ^ 0x5555, 2, i);
        }
        assert!(c.capacity() > 16);
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut c = ComputedCache::new(64);
        c.insert(1, 2, 3, 4);
        assert_eq!(c.get(1, 2, 3), Some(4));
        c.invalidate();
        assert_eq!(c.get(1, 2, 3), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn distinct_tags_do_not_alias() {
        let mut c = ComputedCache::new(1 << 10);
        c.insert(7, 8, 1, 100);
        c.insert(7, 8, 2, 200);
        // Either both live (different slots) or the later overwrote the
        // earlier (same slot) — but a hit must never return the wrong tag's
        // value.
        if let Some(v) = c.get(7, 8, 1) {
            assert_eq!(v, 100);
        }
        assert_eq!(c.get(7, 8, 2), Some(200));
    }

    #[test]
    fn two_way_keeps_conflicting_pair_alive() {
        // Two keys forced into the same set must both survive — the seed's
        // direct-mapped cache lost one of them.
        let mut c = ComputedCache::with_max(16, 16);
        let mut pair: Option<(u64, u64)> = None;
        'outer: for a in 0..64u64 {
            for b in (a + 1)..64u64 {
                let probe = ComputedCache::with_max(16, 16);
                if probe.set_base(a, a, 1) == probe.set_base(b, b, 1) {
                    pair = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = pair.expect("some pair must collide in 8 sets");
        c.insert(a, a, 1, 10);
        c.insert(b, b, 1, 20);
        assert_eq!(c.get(a, a, 1), Some(10));
        assert_eq!(c.get(b, b, 1), Some(20));
    }

    #[test]
    fn empty_slots_never_alias_a_legal_tag() {
        // Regression: an empty slot's tag is u32::MAX; masking the age bit
        // out of way 0's stored tag must not make it equal a legal caller
        // tag (the largest one is AGE_BIT - 1).
        let mut c = ComputedCache::new(64);
        for k in 0..64u64 {
            assert_eq!(c.get(k, k, AGE_BIT - 1), None, "false hit on empty slot");
        }
        c.insert(3, 4, AGE_BIT - 1, 77);
        assert_eq!(c.get(3, 4, AGE_BIT - 1), Some(77));
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c = ComputedCache::new(64);
        c.insert(1, 2, 3, 4);
        assert_eq!(c.get(1, 2, 3), Some(4));
        assert_eq!(c.get(9, 9, 3), None);
        let s = c.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.inserts, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }
}

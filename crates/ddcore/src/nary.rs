//! N-ary Boolean operators as packed truth tables (up to 6 operands).
//!
//! The generic n-ary `apply` of the verification ops layer recurses on a
//! *vector* of operands under one operator. Like the binary
//! [`BoolOp`](crate::BoolOp), the operator is a truth table so that operand
//! rewrites are constant-time bit permutations: constants *restrict* the
//! table (dropping an operand), complemented operands swap bit planes, and
//! a table that degenerates to a constant terminates the recursion — the
//! n-ary generalization of the paper's `updateop` canonicalization.
//!
//! Bit `m` of the table is the operator's value on the input vector whose
//! operand `i` equals bit `i` of `m`, so a 6-ary operator fills exactly one
//! `u64`.

/// A Boolean operator of up to 6 operands, encoded as a packed truth table.
///
/// ```
/// use ddcore::NaryOp;
/// let maj = NaryOp::majority3();
/// assert!(maj.eval(0b011));
/// assert!(!maj.eval(0b100));
/// // Restricting an operand to a constant yields the (k-1)-ary cofactor:
/// let or2 = maj.restrict(2, true); // maj(a, b, 1) = a ∨ b
/// assert_eq!(or2, NaryOp::disjunction(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NaryOp {
    arity: u8,
    table: u64,
}

impl NaryOp {
    /// Maximum supported operand count (the table must fit in a `u64`).
    pub const MAX_ARITY: usize = 6;

    /// An operator over `arity` operands with the given packed truth table
    /// (bits above `2^arity` are ignored).
    ///
    /// # Panics
    /// Panics if `arity` is 0 or exceeds [`NaryOp::MAX_ARITY`].
    #[must_use]
    pub fn new(arity: usize, table: u64) -> Self {
        assert!(
            (1..=Self::MAX_ARITY).contains(&arity),
            "NaryOp arity must be 1..=6"
        );
        NaryOp {
            arity: arity as u8,
            table: table & Self::mask(arity),
        }
    }

    /// Build the table by evaluating `f` on every input vector.
    #[must_use]
    pub fn from_fn(arity: usize, f: impl Fn(u32) -> bool) -> Self {
        assert!(
            (1..=Self::MAX_ARITY).contains(&arity),
            "NaryOp arity must be 1..=6"
        );
        let mut table = 0u64;
        for m in 0..(1u32 << arity) {
            if f(m) {
                table |= 1 << m;
            }
        }
        NaryOp {
            arity: arity as u8,
            table,
        }
    }

    /// `a₀ ∧ a₁ ∧ … ∧ a_{k-1}`.
    #[must_use]
    pub fn conjunction(arity: usize) -> Self {
        Self::from_fn(arity, |m| m == (1u32 << arity) - 1)
    }

    /// `a₀ ∨ a₁ ∨ … ∨ a_{k-1}`.
    #[must_use]
    pub fn disjunction(arity: usize) -> Self {
        Self::from_fn(arity, |m| m != 0)
    }

    /// `a₀ ⊕ a₁ ⊕ … ⊕ a_{k-1}`.
    #[must_use]
    pub fn parity(arity: usize) -> Self {
        Self::from_fn(arity, |m| m.count_ones() % 2 == 1)
    }

    /// The three-input majority function.
    #[must_use]
    pub fn majority3() -> Self {
        Self::from_fn(3, |m| m.count_ones() >= 2)
    }

    /// Number of operands.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity as usize
    }

    /// The packed truth table (defined bits only).
    #[must_use]
    pub fn table(&self) -> u64 {
        self.table
    }

    /// The operator's value on the input vector `m` (operand `i` = bit `i`).
    #[must_use]
    pub fn eval(&self, m: u32) -> bool {
        debug_assert!(m < (1u32 << self.arity));
        (self.table >> m) & 1 == 1
    }

    /// `Some(value)` when the operator ignores all operands.
    #[must_use]
    pub fn as_constant(&self) -> Option<bool> {
        if self.table == 0 {
            Some(false)
        } else if self.table == Self::mask(self.arity as usize) {
            Some(true)
        } else {
            None
        }
    }

    /// The `(k-1)`-ary cofactor fixing operand `i` to `value`; operands
    /// above `i` shift down one position.
    ///
    /// # Panics
    /// Panics if the operator is unary or `i` is out of range.
    #[must_use]
    pub fn restrict(&self, i: usize, value: bool) -> Self {
        let a = self.arity as usize;
        assert!(a > 1, "cannot restrict a unary operator");
        assert!(i < a, "operand index out of range");
        let mut table = 0u64;
        for m2 in 0..(1u32 << (a - 1)) {
            let low = m2 & ((1 << i) - 1);
            let high = (m2 >> i) << (i + 1);
            let m = high | ((value as u32) << i) | low;
            if self.eval(m) {
                table |= 1 << m2;
            }
        }
        NaryOp {
            arity: (a - 1) as u8,
            table,
        }
    }

    /// The operator with operand `i` complemented (the n-ary `updateop`:
    /// folding a complement attribute into the table keeps operands in
    /// regular form, maximizing memo hits).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn complement_operand(&self, i: usize) -> Self {
        let a = self.arity as usize;
        assert!(i < a, "operand index out of range");
        let mut table = 0u64;
        for m in 0..(1u32 << a) {
            if self.eval(m ^ (1 << i)) {
                table |= 1 << m;
            }
        }
        NaryOp {
            arity: self.arity,
            table,
        }
    }

    /// The complemented operator (`¬(f ⊗ …)`).
    #[must_use]
    pub fn complement_output(&self) -> Self {
        NaryOp {
            arity: self.arity,
            table: !self.table & Self::mask(self.arity as usize),
        }
    }

    fn mask(arity: usize) -> u64 {
        if arity >= 6 {
            u64::MAX
        } else {
            (1u64 << (1usize << arity)) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_operators_evaluate() {
        let and3 = NaryOp::conjunction(3);
        let or3 = NaryOp::disjunction(3);
        let xor4 = NaryOp::parity(4);
        for m in 0..8u32 {
            assert_eq!(and3.eval(m), m == 7);
            assert_eq!(or3.eval(m), m != 0);
        }
        for m in 0..16u32 {
            assert_eq!(xor4.eval(m), m.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn restrict_matches_cofactor() {
        let maj = NaryOp::majority3();
        for i in 0..3 {
            for value in [false, true] {
                let r = maj.restrict(i, value);
                assert_eq!(r.arity(), 2);
                for m2 in 0..4u32 {
                    let low = m2 & ((1 << i) - 1);
                    let high = (m2 >> i) << (i + 1);
                    let m = high | ((value as u32) << i) | low;
                    assert_eq!(r.eval(m2), maj.eval(m), "i={i} value={value} m2={m2}");
                }
            }
        }
    }

    #[test]
    fn complement_operand_swaps_planes() {
        let maj = NaryOp::majority3();
        let c = maj.complement_operand(1);
        for m in 0..8u32 {
            assert_eq!(c.eval(m), maj.eval(m ^ 0b010));
        }
        assert_eq!(c.complement_operand(1), maj, "involution");
    }

    #[test]
    fn constants_detected() {
        assert_eq!(NaryOp::new(3, 0).as_constant(), Some(false));
        assert_eq!(NaryOp::new(3, 0xFF).as_constant(), Some(true));
        assert_eq!(NaryOp::majority3().as_constant(), None);
        // A restricted chain bottoms out at arity 1; AND(1, b) = b.
        let one_left = NaryOp::conjunction(2).restrict(0, true);
        assert_eq!(one_left.arity(), 1);
        assert!(one_left.eval(1) && !one_left.eval(0));
        assert_eq!(
            NaryOp::conjunction(2).restrict(0, false).as_constant(),
            Some(false)
        );
    }

    #[test]
    fn six_ary_uses_full_word() {
        let p = NaryOp::parity(6);
        assert_eq!(p.complement_output().table() ^ p.table(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "arity must be")]
    fn arity_zero_rejected() {
        let _ = NaryOp::new(0, 0);
    }
}

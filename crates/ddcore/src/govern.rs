//! Resource governance for long-running diagram operations: node-count
//! budgets, wall-clock deadlines and cooperative cancellation.
//!
//! Every recursive hot path in the managers (`apply`, `ite`,
//! quantification, composition, `sat_count`, sifting) polls an
//! [`OpBudget`] at its *cache-miss boundaries* — the points where the
//! recursion is about to materialize work that was not already memoized.
//! Each poll is a [`OpBudget::checkpoint`]: on the fast path it is one
//! counter increment, one decrement and one never-taken branch; only every
//! `poll_stride` checkpoints does the slow path run, which is where the
//! deadline syscall (`Instant::now`) and the [`CancelToken`] load happen.
//! A budget therefore bounds *abort latency* as well as cost: once a token
//! is raised or a deadline passes, the operation aborts within at most one
//! poll stride of further checkpoints (see `tests/abort_safety.rs` for the
//! deterministic test of that bound).
//!
//! The contract the managers uphold — **abort safety** — is that an
//! [`Err(OpAbort)`](OpAbort) returned from any `try_*` operation leaves
//! the manager fully usable: unique tables canonical, computed caches free
//! of entries referencing never-committed nodes, the root registry
//! balanced, and any orphaned partial results reclaimed by the next GC.
//! The deterministic fault-injection hook ([`OpBudget::inject_cancel_at`])
//! exists so tests can force an abort at *exactly* the K-th checkpoint and
//! sweep K exhaustively over a workload.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a governed operation aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpAbort {
    /// The budget's node-creation ceiling was reached.
    NodeBudget,
    /// The wall-clock deadline passed.
    Deadline,
    /// The operation's [`CancelToken`] was raised (or a fault-injection
    /// hook fired — injection reuses the cancellation path).
    Cancelled,
}

impl std::fmt::Display for OpAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpAbort::NodeBudget => write!(f, "operation aborted: node budget exhausted"),
            OpAbort::Deadline => write!(f, "operation aborted: deadline exceeded"),
            OpAbort::Cancelled => write!(f, "operation aborted: cancelled"),
        }
    }
}

impl std::error::Error for OpAbort {}

/// A shareable cancellation flag: clone it, hand one copy to the thread
/// running a governed operation (inside an [`OpBudget`]) and keep the
/// other; [`CancelToken::cancel`] from anywhere makes the operation return
/// [`OpAbort::Cancelled`] within one poll stride of checkpoints.
///
/// ```
/// use ddcore::govern::CancelToken;
/// let t = CancelToken::new();
/// let t2 = t.clone();
/// assert!(!t.is_cancelled());
/// t2.cancel();
/// assert!(t.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-raised token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Raise the token. Idempotent; there is no way to lower it again.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has the token been raised?
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// The resource envelope of one governed request: a node-creation ceiling,
/// an optional wall-clock deadline and an optional [`CancelToken`], polled
/// via an amortized counter.
///
/// A budget is *caller-owned* and passed as `&mut` into each `try_*`
/// operation, so one budget can span a whole multi-operation request: the
/// node count depletes across calls. [`OpBudget::unlimited`] never aborts
/// (the infallible operations are thin wrappers over the `try_*` forms
/// with an unlimited budget).
///
/// ```
/// use ddcore::govern::{OpAbort, OpBudget};
/// let mut b = OpBudget::unlimited().with_node_limit(2);
/// assert_eq!(b.checkpoint(), Ok(()));
/// assert_eq!(b.checkpoint(), Ok(()));
/// assert_eq!(b.checkpoint(), Err(OpAbort::NodeBudget));
/// assert_eq!(b.used(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct OpBudget {
    /// Checkpoints until the next slow-path poll (counts down to 0).
    ticks_left: u64,
    /// Total checkpoints passed so far.
    used: u64,
    /// Checkpoint ceiling (`u64::MAX` = unlimited). Checkpoints sit at
    /// node-materialization boundaries, so this is the node budget.
    node_limit: u64,
    /// Checkpoints between slow-path polls (deadline/token checks).
    stride: u64,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    /// Fault-injection hook: abort (as `Cancelled`) once `used` reaches
    /// this value. `u64::MAX` = disabled.
    inject_at: u64,
}

/// Default checkpoints between deadline/token polls. At typical
/// node-materialization rates this keeps abort latency well under a
/// millisecond while making the poll cost unmeasurable.
pub const DEFAULT_POLL_STRIDE: u64 = 1024;

impl Default for OpBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl OpBudget {
    /// A budget with no limits: `checkpoint` never fails. This is what the
    /// infallible operation wrappers use.
    #[must_use]
    pub fn unlimited() -> Self {
        OpBudget {
            ticks_left: 0, // re-armed by the first slow-path visit
            used: 0,
            node_limit: u64::MAX,
            stride: DEFAULT_POLL_STRIDE,
            deadline: None,
            cancel: None,
            inject_at: u64::MAX,
        }
    }

    /// Cap the budget at `n` checkpoints (≈ nodes materialized across all
    /// operations charged to this budget). `u64::MAX` disables the cap.
    #[must_use]
    pub fn with_node_limit(mut self, n: u64) -> Self {
        self.node_limit = n;
        self.ticks_left = 0;
        self
    }

    /// Abort with [`OpAbort::Deadline`] once `Instant::now()` passes
    /// `deadline` (observed at the next slow-path poll).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self.ticks_left = 0;
        self
    }

    /// [`OpBudget::with_deadline`] at `now + limit`.
    #[must_use]
    pub fn with_deadline_in(self, limit: Duration) -> Self {
        self.with_deadline(Instant::now() + limit)
    }

    /// Attach a cancellation token (cloned; the caller keeps the original
    /// to raise from another thread).
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self.ticks_left = 0;
        self
    }

    /// Checkpoints between deadline/token polls (the abort-latency bound).
    /// Must be at least 1; smaller = more responsive, more poll overhead.
    ///
    /// # Panics
    /// Panics if `stride` is 0.
    #[must_use]
    pub fn with_poll_stride(mut self, stride: u64) -> Self {
        assert!(stride >= 1, "poll stride must be at least 1");
        self.stride = stride;
        self.ticks_left = 0;
        self
    }

    /// Deterministic fault injection (tests): force an
    /// [`OpAbort::Cancelled`] at exactly the `k`-th checkpoint (1-based:
    /// `k = 1` aborts the very first checkpoint). The abort-safety harness
    /// sweeps `k` exhaustively over small workloads.
    #[must_use]
    pub fn inject_cancel_at(mut self, k: u64) -> Self {
        self.inject_at = k;
        self.ticks_left = 0;
        self
    }

    /// Total checkpoints passed (≈ nodes materialized under this budget).
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Checkpoint headroom before [`OpAbort::NodeBudget`]
    /// (`u64::MAX` when unlimited).
    #[must_use]
    pub fn nodes_remaining(&self) -> u64 {
        if self.node_limit == u64::MAX {
            u64::MAX
        } else {
            self.node_limit.saturating_sub(self.used)
        }
    }

    /// The budget poll, called by the recursion cores at every cache-miss
    /// boundary. Fast path: increment, decrement, one rarely-taken branch.
    ///
    /// # Errors
    /// Returns the abort reason once a limit is hit; once it has returned
    /// an error it keeps returning one (callers must not retry a depleted
    /// budget, but propagating `?` through a recursion may poll again).
    #[inline]
    pub fn checkpoint(&mut self) -> Result<(), OpAbort> {
        self.used += 1;
        if self.ticks_left == 0 {
            self.poll_slow()
        } else {
            self.ticks_left -= 1;
            Ok(())
        }
    }

    /// The slow path: fault injection, ceiling, token, clock — then re-arm
    /// the countdown to the next *event* (stride, ceiling or injection
    /// point, whichever is nearest).
    #[cold]
    fn poll_slow(&mut self) -> Result<(), OpAbort> {
        if self.used >= self.inject_at {
            return Err(OpAbort::Cancelled);
        }
        if self.used > self.node_limit {
            return Err(OpAbort::NodeBudget);
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(OpAbort::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(OpAbort::Deadline);
            }
        }
        let mut next = self.stride;
        if self.node_limit != u64::MAX {
            next = next.min(self.node_limit - self.used + 1);
        }
        if self.inject_at != u64::MAX {
            next = next.min(self.inject_at - self.used);
        }
        self.ticks_left = next.max(1) - 1;
        Ok(())
    }

    /// A thread-shareable snapshot for the parallel managers' fork-join
    /// phases: workers check it *between tasks* (the overlay recursions
    /// themselves stay poll-free; the commit back into the base manager is
    /// charged through [`OpBudget::checkpoint`] as usual).
    #[must_use]
    pub fn stop_view(&self) -> StopView {
        StopView {
            cancel: self.cancel.clone(),
            deadline: self.deadline,
            inject: self.inject_at != u64::MAX,
            node_headroom: self.nodes_remaining(),
        }
    }

    /// Charge `n` checkpoints at once (used by the parallel commit path to
    /// account imported overlay nodes in bulk).
    ///
    /// # Errors
    /// Same contract as [`OpBudget::checkpoint`].
    pub fn charge(&mut self, n: u64) -> Result<(), OpAbort> {
        for _ in 0..n {
            self.checkpoint()?;
        }
        Ok(())
    }
}

/// A `Sync` snapshot of an [`OpBudget`]'s stop conditions, checked by
/// fork-join workers between tasks (see [`OpBudget::stop_view`]).
#[derive(Debug, Clone)]
pub struct StopView {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    /// A fault-injection budget must take the governed (stoppable) path
    /// even though the view itself cannot count checkpoints.
    inject: bool,
    node_headroom: u64,
}

impl StopView {
    /// Should the parallel phase stop? `overlay_nodes` is the number of
    /// overlay nodes materialized so far (counted against the budget's
    /// node headroom at snapshot time).
    #[must_use]
    pub fn should_stop(&self, overlay_nodes: u64) -> Option<OpAbort> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(OpAbort::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(OpAbort::Deadline);
            }
        }
        if overlay_nodes > self.node_headroom {
            return Some(OpAbort::NodeBudget);
        }
        None
    }

    /// Does this view carry any stop condition at all? Unlimited budgets
    /// answer `false`, letting the parallel phase skip the governed path
    /// entirely.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.cancel.is_some()
            || self.deadline.is_some()
            || self.inject
            || self.node_headroom != u64::MAX
    }
}

/// Per-session admission control: the default resource envelope a serving
/// session grants each request, plus the session-wide [`CancelToken`].
///
/// An `Admission` is the *policy*; [`Admission::mint`] turns it into the
/// per-request [`OpBudget`] *mechanism*. Every minted budget carries the
/// session's token, so cancelling the session aborts whatever request is
/// in flight — and every request after it — without touching the shared
/// base (see `ddcore::session`).
///
/// ```
/// use ddcore::govern::{Admission, OpAbort};
/// use std::time::Duration;
/// let adm = Admission::unlimited()
///     .with_node_limit(10_000)
///     .with_time_limit(Duration::from_millis(50));
/// let mut budget = adm.mint(); // one fresh envelope per request
/// assert!(budget.checkpoint().is_ok());
/// adm.cancel();
/// assert_eq!(adm.mint().checkpoint(), Err(OpAbort::Cancelled));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Admission {
    node_limit: Option<u64>,
    time_limit: Option<Duration>,
    token: CancelToken,
}

impl Admission {
    /// No default limits; requests still honour the session token.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Default per-request node-creation ceiling.
    #[must_use]
    pub fn with_node_limit(mut self, n: u64) -> Self {
        self.node_limit = Some(n);
        self
    }

    /// Default per-request wall-clock allowance (the deadline is re-armed
    /// at each [`Admission::mint`], not fixed at construction).
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// The session-wide cancellation token (clone it to other threads).
    #[must_use]
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Raise the session's token: the in-flight request and every later
    /// one abort with [`OpAbort::Cancelled`].
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Mint one request's [`OpBudget`] from the default envelope.
    #[must_use]
    pub fn mint(&self) -> OpBudget {
        self.mint_with(None, None)
    }

    /// Mint a request budget with per-request overrides: an explicit
    /// `nodes` / `time` replaces the session default for this request
    /// only (it cannot escape the session token).
    #[must_use]
    pub fn mint_with(&self, nodes: Option<u64>, time: Option<Duration>) -> OpBudget {
        let mut b = OpBudget::unlimited().with_cancel(&self.token);
        if let Some(n) = nodes.or(self.node_limit) {
            b = b.with_node_limit(n);
        }
        if let Some(t) = time.or(self.time_limit) {
            b = b.with_deadline_in(t);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_aborts() {
        let mut b = OpBudget::unlimited();
        for _ in 0..10_000 {
            assert_eq!(b.checkpoint(), Ok(()));
        }
        assert_eq!(b.used(), 10_000);
        assert_eq!(b.nodes_remaining(), u64::MAX);
    }

    #[test]
    fn node_limit_exact_boundary() {
        for limit in [1u64, 2, 7, 100] {
            let mut b = OpBudget::unlimited().with_node_limit(limit);
            for i in 0..limit {
                assert_eq!(b.checkpoint(), Ok(()), "checkpoint {i} under limit {limit}");
            }
            assert_eq!(b.checkpoint(), Err(OpAbort::NodeBudget));
            assert_eq!(b.used(), limit + 1);
            // Depleted budgets stay depleted.
            assert_eq!(b.checkpoint(), Err(OpAbort::NodeBudget));
        }
    }

    #[test]
    fn injection_fires_at_exact_checkpoint() {
        for k in [1u64, 2, 3, 50] {
            let mut b = OpBudget::unlimited().inject_cancel_at(k);
            for i in 1..k {
                assert_eq!(b.checkpoint(), Ok(()), "checkpoint {i} before k={k}");
            }
            assert_eq!(b.checkpoint(), Err(OpAbort::Cancelled), "k={k}");
        }
    }

    #[test]
    fn cancel_observed_within_stride() {
        let token = CancelToken::new();
        let mut b = OpBudget::unlimited()
            .with_cancel(&token)
            .with_poll_stride(8);
        token.cancel();
        let mut aborted_at = None;
        for i in 1..=64u64 {
            if b.checkpoint().is_err() {
                aborted_at = Some(i);
                break;
            }
        }
        let at = aborted_at.expect("a raised token must abort");
        assert!(at <= 8, "aborted at checkpoint {at}, stride is 8");
    }

    #[test]
    fn expired_deadline_aborts_immediately_with_stride_one() {
        let mut b = OpBudget::unlimited()
            .with_deadline(Instant::now() - Duration::from_millis(1))
            .with_poll_stride(1);
        assert_eq!(b.checkpoint(), Err(OpAbort::Deadline));
    }

    #[test]
    fn stop_view_reflects_conditions() {
        let unlimited = OpBudget::unlimited();
        assert!(!unlimited.stop_view().is_limited());

        let token = CancelToken::new();
        let b = OpBudget::unlimited().with_cancel(&token);
        let view = b.stop_view();
        assert!(view.is_limited());
        assert_eq!(view.should_stop(0), None);
        token.cancel();
        assert_eq!(view.should_stop(0), Some(OpAbort::Cancelled));

        let b = OpBudget::unlimited().with_node_limit(10);
        let view = b.stop_view();
        assert_eq!(view.should_stop(10), None);
        assert_eq!(view.should_stop(11), Some(OpAbort::NodeBudget));

        assert!(OpBudget::unlimited()
            .inject_cancel_at(3)
            .stop_view()
            .is_limited());
    }

    #[test]
    fn charge_bulk_accounts_like_loop() {
        let mut a = OpBudget::unlimited().with_node_limit(100);
        let mut b = OpBudget::unlimited().with_node_limit(100);
        assert_eq!(a.charge(60), Ok(()));
        for _ in 0..60 {
            b.checkpoint().unwrap();
        }
        assert_eq!(a.used(), b.used());
        assert_eq!(a.charge(41), Err(OpAbort::NodeBudget));
    }

    #[test]
    fn display_and_error() {
        let e: Box<dyn std::error::Error> = Box::new(OpAbort::Deadline);
        assert!(e.to_string().contains("deadline"));
        assert!(OpAbort::NodeBudget.to_string().contains("node budget"));
        assert!(OpAbort::Cancelled.to_string().contains("cancelled"));
    }
}

//! Randomized model checks and adaptation tests for the storage layer:
//! the open-addressed unique table is driven against `std::HashMap` as a
//! reference model (including the in-place GC sweep and both deletion
//! regimes — eager backward shift and deferred tombstoning), tables are
//! forced through resizes and hasher rearrangements, the 2-way computed
//! cache through evictions and epoch invalidation, and the concurrent
//! sharded table through racing multi-threaded insert storms.

use ddcore::cantor::CantorHasher;
use ddcore::par::ShardedTable;
use ddcore::table::{BucketTable, OpenTable, TableKey};
use ddcore::ComputedCache;
use std::collections::HashMap;

#[derive(Clone, Copy, PartialEq, Eq, Default, Debug, Hash)]
struct K2(u32, u32);

impl TableKey for K2 {
    fn table_hash(&self, h: &CantorHasher) -> u64 {
        h.hash2(self.0 as u64, self.1 as u64)
    }
}

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The open table must agree with a reference map under a random workload
/// of combined lookups, inserts, removals and retain sweeps. After every
/// operation, every reference entry must still be reachable — this is the
/// test that catches broken backward-shift deletion and relocation bugs.
#[test]
fn open_table_matches_reference_model() {
    let mut rng = SplitMix(0xDEAD_BEEF);
    for round in 0..60 {
        let mut t: OpenTable<K2> = OpenTable::new(4);
        let mut m: HashMap<K2, u32> = HashMap::new();
        let mut next_val = 0u32;
        for step in 0..4000 {
            let r = rng.next();
            let k = K2((r % 97) as u32, ((r >> 8) % 61) as u32);
            match r % 5 {
                0 | 1 => {
                    let expect = m.get(&k).copied();
                    let v = t.get_or_insert_with(k, || next_val);
                    match expect {
                        Some(e) => assert_eq!(v, e, "round {round} step {step}: stale hit"),
                        None => {
                            assert_eq!(v, next_val, "round {round} step {step}: miss value");
                            m.insert(k, next_val);
                            next_val += 1;
                        }
                    }
                }
                2 => {
                    assert_eq!(t.get(&k), m.get(&k).copied(), "round {round} step {step}");
                }
                3 => {
                    assert_eq!(t.remove(&k), m.remove(&k), "round {round} step {step}");
                }
                _ => {
                    if r % 40 == 4 {
                        m.retain(|_, v| *v % 3 != 0);
                        t.retain(|_, v| v % 3 != 0);
                    } else if let std::collections::hash_map::Entry::Vacant(e) = m.entry(k) {
                        t.insert(k, next_val);
                        e.insert(next_val);
                        next_val += 1;
                    }
                }
            }
            assert_eq!(t.len(), m.len(), "round {round} step {step}: len drift");
        }
        // Full audit at the end of the round.
        for (k, v) in &m {
            assert_eq!(t.get(k), Some(*v), "round {round}: entry {k:?} lost");
        }
        let mut seen = 0;
        t.for_each(|k, v| {
            assert_eq!(m.get(k), Some(&v));
            seen += 1;
        });
        assert_eq!(seen, m.len());
    }
}

/// Growth must be observable through the stats and preserve every entry.
#[test]
fn open_table_resize_preserves_entries() {
    let mut t: OpenTable<K2> = OpenTable::new(4);
    for i in 0..50_000u32 {
        t.insert(K2(i, i.wrapping_mul(7)), i);
    }
    assert!(t.stats().resizes > 5, "growth must be tracked");
    for i in 0..50_000u32 {
        assert_eq!(
            t.get(&K2(i, i.wrapping_mul(7))),
            Some(i),
            "key {i} lost in resize"
        );
    }
}

/// Force a hasher rearrangement through the public adaptive path (a miss
/// storm inflates the probe window) and check every entry survives the
/// rotation to the next Cantor arrangement.
#[test]
fn open_table_rearrangement_preserves_entries() {
    let mut t: OpenTable<K2> = OpenTable::new(4);
    for i in 0..512u32 {
        t.insert(K2(i, 1), i);
    }
    let arrangement_before = t.hasher().arrangement();
    // Hammer lookups of colliding missing keys until a window closes with
    // a poor average, then insert to trigger the adaptation check.
    let mut attempts = 0;
    while t.stats().rearrangements == 0 && attempts < 64 {
        for i in 0..5000u32 {
            let _ = t.get(&K2(i.wrapping_mul(4096), 9));
        }
        let fresh = 1_000_000 + t.len() as u32;
        t.insert(K2(fresh, 3), 7);
        attempts += 1;
    }
    if t.stats().rearrangements > 0 {
        assert_ne!(
            t.hasher().arrangement(),
            arrangement_before,
            "rearrangement must rotate the hash arrangement"
        );
    }
    for i in 0..512u32 {
        assert_eq!(t.get(&K2(i, 1)), Some(i), "key {i} lost in rearrangement");
    }
}

/// Deletion churn pinned inside the deferred-repair (L1-resident) regime:
/// the key universe is small enough that the table never outgrows the
/// deferral cap, so every removal tombstones and the batched sweep must
/// eventually compact — all while agreeing with the reference model.
#[test]
fn open_table_deferred_repair_matches_reference_model() {
    let mut rng = SplitMix(0xF1E2_D3C4);
    let mut t: OpenTable<K2> = OpenTable::new(64);
    let mut m: HashMap<K2, u32> = HashMap::new();
    let mut next_val = 0u32;
    for step in 0..60_000 {
        let r = rng.next();
        let k = K2((r % 29) as u32, ((r >> 8) % 17) as u32);
        match r % 4 {
            0 | 1 => {
                let expect = m.get(&k).copied();
                let v = t.get_or_insert_with(k, || next_val);
                match expect {
                    Some(e) => assert_eq!(v, e, "step {step}"),
                    None => {
                        m.insert(k, next_val);
                        next_val += 1;
                    }
                }
            }
            2 => assert_eq!(t.remove(&k), m.remove(&k), "step {step}"),
            _ => {
                if r % 64 == 3 {
                    m.retain(|_, v| *v % 7 != 0);
                    t.retain(|_, v| v % 7 != 0);
                } else {
                    assert_eq!(t.get(&k), m.get(&k).copied(), "step {step}");
                }
            }
        }
        assert_eq!(t.len(), m.len(), "step {step}: len drift");
    }
    for (k, v) in &m {
        assert_eq!(t.get(k), Some(*v), "entry {k:?} lost");
    }
    // A pure deletion burst (no inserts to recycle tombstones) must cross
    // the sweep threshold: fill the whole key universe, then drain it.
    for a in 0..29u32 {
        for b in 0..17u32 {
            let k = K2(a, b);
            if let std::collections::hash_map::Entry::Vacant(e) = m.entry(k) {
                t.insert(k, next_val);
                e.insert(next_val);
                next_val += 1;
            }
        }
    }
    let keys: Vec<K2> = m.keys().copied().collect();
    for k in keys {
        assert_eq!(t.remove(&k), m.remove(&k));
    }
    assert!(t.is_empty());
    assert!(
        t.stats().batched_repairs > 0,
        "a full drain in the small regime must trigger the batched sweep"
    );
}

/// Concurrent-insert model check of the sharded table: racing threads
/// hammer overlapping key populations through `get_or_insert_with` (the
/// value is a pure function of the key, so the first-wins race is
/// observable), and the final contents must equal the single-threaded
/// reference model exactly.
#[test]
fn sharded_table_concurrent_inserts_match_reference_model() {
    for threads in [2usize, 4, 8] {
        let t: ShardedTable<K2> = ShardedTable::new(8, 16);
        std::thread::scope(|s| {
            for tid in 0..threads {
                let t = &t;
                s.spawn(move || {
                    let mut rng = SplitMix(0xACE0 + tid as u64);
                    for _ in 0..20_000 {
                        let r = rng.next();
                        let k = K2((r % 401) as u32, ((r >> 9) % 127) as u32);
                        let v = t.get_or_insert_with(k, || k.0.wrapping_mul(31) ^ k.1);
                        assert_eq!(
                            v,
                            k.0.wrapping_mul(31) ^ k.1,
                            "a racing insert must never surface a foreign value"
                        );
                    }
                });
            }
        });
        // Reference model: replay the same key universe single-threaded.
        let mut m: HashMap<K2, u32> = HashMap::new();
        for tid in 0..threads {
            let mut rng = SplitMix(0xACE0 + tid as u64);
            for _ in 0..20_000 {
                let r = rng.next();
                let k = K2((r % 401) as u32, ((r >> 9) % 127) as u32);
                m.entry(k).or_insert(k.0.wrapping_mul(31) ^ k.1);
            }
        }
        assert_eq!(t.len(), m.len(), "threads {threads}");
        let mut seen = 0usize;
        t.for_each(|k, v| {
            assert_eq!(m.get(k), Some(&v), "threads {threads}: foreign entry {k:?}");
            seen += 1;
        });
        assert_eq!(seen, m.len(), "threads {threads}");
        let occ: usize = t.shard_stats().iter().map(|s| s.len).sum();
        assert_eq!(occ, m.len(), "threads {threads}: shard occupancy drift");
    }
}

/// The chained table honours the same model (regression cover for the
/// `chained_tables` ablation path).
#[test]
fn bucket_table_matches_reference_model() {
    let mut rng = SplitMix(0x5EED);
    let mut t: BucketTable<K2> = BucketTable::new(4);
    let mut m: HashMap<K2, u32> = HashMap::new();
    let mut next_val = 0u32;
    for _ in 0..30_000 {
        let r = rng.next();
        let k = K2((r % 211) as u32, ((r >> 9) % 89) as u32);
        match r % 4 {
            0 | 1 => {
                if let std::collections::hash_map::Entry::Vacant(e) = m.entry(k) {
                    t.insert(k, next_val);
                    e.insert(next_val);
                    next_val += 1;
                }
            }
            2 => assert_eq!(t.get(&k), m.get(&k).copied()),
            _ => assert_eq!(t.remove(&k), m.remove(&k)),
        }
        assert_eq!(t.len(), m.len());
    }
}

/// A full 2-way set must evict exactly one entry per conflicting insert
/// and count it; the aged (older) way is the victim.
#[test]
fn cache_eviction_is_counted_and_age_based() {
    let mut c = ComputedCache::with_max(16, 16);
    // Find three keys mapping to one set by brute force.
    let probe = ComputedCache::with_max(16, 16);
    let base = probe_set(&probe, 0);
    let mut same_set = vec![0u64];
    let mut k = 1u64;
    while same_set.len() < 3 {
        if probe_set(&probe, k) == base {
            same_set.push(k);
        }
        k += 1;
    }
    let (a, b, d) = (same_set[0], same_set[1], same_set[2]);
    c.insert(a, a, 1, 100); // way 0 (older after next insert)
    c.insert(b, b, 1, 200); // way 1
    assert_eq!(c.stats().evictions, 0);
    c.insert(d, d, 1, 300); // evicts a (the older way)
    assert_eq!(c.stats().evictions, 1);
    assert_eq!(c.get(a, a, 1), None, "oldest entry must be the victim");
    assert_eq!(c.get(b, b, 1), Some(200), "newer way must survive");
    assert_eq!(c.get(d, d, 1), Some(300));
}

/// Set index of key `(k, k, tag 1)` — mirrors the cache's internal
/// `set_base` (a fresh cache always starts from the default hasher).
fn probe_set(c: &ComputedCache, k: u64) -> usize {
    CantorHasher::new().hash3(k, k, 1) as usize & (c.capacity() / 2 - 1)
}

/// Epoch invalidation must kill every live entry at once, lazily, and be
/// counted — and the cache must keep working afterwards.
#[test]
fn cache_epoch_invalidation_drops_all_entries() {
    let mut c = ComputedCache::new(64);
    for i in 0..40u64 {
        c.insert(i, i * 3, 2, i + 7);
    }
    let live_before: usize = (0..40u64).filter(|&i| c.get(i, i * 3, 2).is_some()).count();
    assert!(live_before > 0);
    c.invalidate();
    assert_eq!(c.stats().invalidations, 1);
    for i in 0..40u64 {
        assert_eq!(
            c.get(i, i * 3, 2),
            None,
            "entry {i} survived the epoch bump"
        );
    }
    // Reinsertion under the new epoch works.
    c.insert(1, 2, 3, 4);
    assert_eq!(c.get(1, 2, 3), Some(4));
}

/// Stale-epoch slots must be reused silently (no eviction counted): after
/// an invalidation the cache is morally empty.
#[test]
fn stale_epoch_slots_are_not_evictions() {
    let mut c = ComputedCache::with_max(16, 16);
    for i in 0..100u64 {
        c.insert(i, i, 1, i);
    }
    let evictions_before = c.stats().evictions;
    c.invalidate();
    // One fresh key per set: every insert lands on a stale slot.
    let mut covered = std::collections::HashSet::new();
    let mut k = 200u64;
    while covered.len() < c.capacity() / 2 {
        if covered.insert(probe_set(&c, k)) {
            c.insert(k, k, 1, k);
        }
        k += 1;
    }
    // Overwriting stale entries is not an eviction of live data.
    assert_eq!(
        c.stats().evictions,
        evictions_before,
        "stale slots must be reused without counting evictions"
    );
}

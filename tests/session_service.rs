//! The MVCC serving contract (`ddcore::session`), proved on all four
//! managers:
//!
//! 1. **Interleaved determinism** — N sessions forked off one published
//!    base and run concurrently (their scripts interleaved across threads)
//!    answer **bit-identically** to the same scripts run one-at-a-time on
//!    fresh sessions, and every answer matches a truth-table shadow model
//!    — i.e. sessions are fully isolated and a serve batch's results do
//!    not depend on scheduling. Driven both by proptest scripts and a
//!    deterministic threaded stress.
//! 2. **Epoch reclamation** — dropping a session returns its overlay
//!    nodes to zero in the tracker; `Session::publish` mints a new
//!    snapshot in the same lineage (epoch bumped) while a still-held old
//!    snapshot keeps serving until its own drop retires it — no live
//!    snapshot is ever retired early.
//! 3. **Serve front door determinism** — `bbdd_suite::serve::run_batch`
//!    answers a mixed request batch identically for 1, 2 and 4 sessions.

use bbdd::{Bbdd, ParBbdd};
use ddcore::govern::OpBudget;
use ddcore::session::{Session, SessionBackend, SharedBase};
use ddcore::BoolOp;
use logicnet::publish::publish_networks_on;
use logicnet::{GateOp, Network};
use proptest::prelude::*;
use robdd::{ParRobdd, Robdd};
use std::sync::Arc;

const NV: usize = 5;
const ROWS: u32 = 32;

// ── Truth-table shadow model (32-bit tables over 5 variables) ────────────

fn tt_var(v: usize) -> u32 {
    let mut t = 0u32;
    for m in 0..ROWS {
        if (m >> v) & 1 == 1 {
            t |= 1 << m;
        }
    }
    t
}

fn tt_restrict(t: u32, v: usize, value: bool) -> u32 {
    let mut r = 0u32;
    for m in 0..ROWS {
        let source = if value { m | (1 << v) } else { m & !(1 << v) };
        if (t >> source) & 1 == 1 {
            r |= 1 << m;
        }
    }
    r
}

fn tt_quant(t: u32, exists: bool, vars: &[usize]) -> u32 {
    vars.iter().fold(t, |t, &v| {
        let (hi, lo) = (tt_restrict(t, v, true), tt_restrict(t, v, false));
        if exists {
            hi | lo
        } else {
            hi & lo
        }
    })
}

fn tt_compose(t: u32, v: usize, g: u32) -> u32 {
    (g & tt_restrict(t, v, true)) | (!g & tt_restrict(t, v, false))
}

// ── The published library ────────────────────────────────────────────────

/// Two functions over the shared inputs: a 3-input parity and a lopsided
/// and-or mix — enough structure for apply/quantify/compose chains to
/// produce non-trivial diagrams.
fn serving_net() -> Network {
    let mut net = Network::new("served");
    let xs: Vec<_> = (0..NV).map(|i| net.add_input(&format!("x{i}"))).collect();
    let p01 = net.add_gate(GateOp::Xor, &[xs[0], xs[1]]);
    let par = net.add_gate(GateOp::Xor, &[p01, xs[2]]);
    let and = net.add_gate(GateOp::And, &[xs[0], xs[3]]);
    let mix = net.add_gate(GateOp::Or, &[and, xs[4]]);
    net.set_output("par", par);
    net.set_output("mix", mix);
    net.check().unwrap();
    net
}

fn shadow_par() -> u32 {
    tt_var(0) ^ tt_var(1) ^ tt_var(2)
}

fn shadow_mix() -> u32 {
    (tt_var(0) & tt_var(3)) | tt_var(4)
}

// ── Script interpreter ───────────────────────────────────────────────────

type Step = (u8, u8, u8, u8);

fn vars_of_mask(mask: u8) -> Vec<usize> {
    (0..NV).filter(|v| (mask >> v) & 1 == 1).collect()
}

/// Run one script on a session, returning the full answer transcript.
/// Every answer is simultaneously checked against the truth-table shadow,
/// so two transcripts being equal means *semantically correct and
/// bit-identical*, not merely mutually consistent.
fn run_script<B: SessionBackend>(session: &mut Session<B>, steps: &[Step]) -> Vec<String> {
    let mut budget = OpBudget::unlimited();
    let mut slots: Vec<(String, u32)> = vec![
        ("par".to_string(), shadow_par()),
        ("mix".to_string(), shadow_mix()),
    ];
    let mut answers = Vec::new();
    for (si, &(kind, a, b, c)) in steps.iter().enumerate() {
        let pick = |x: u8| x as usize % slots.len();
        match kind % 6 {
            0 => {
                let (i, j) = (pick(a), pick(b));
                let op = BoolOp::from_table(c % 16);
                let mut t = 0u32;
                for m in 0..ROWS {
                    let x = (slots[i].1 >> m) & 1 == 1;
                    let y = (slots[j].1 >> m) & 1 == 1;
                    if op.eval(x, y) {
                        t |= 1 << m;
                    }
                }
                let name = format!("t{si}");
                let n = session
                    .apply(
                        op,
                        &slots[i].0,
                        &slots[j].0,
                        Some(name.as_str()),
                        &mut budget,
                    )
                    .expect("apply");
                slots.push((name, t));
                answers.push(format!("apply:{n}"));
            }
            1 => {
                let i = pick(a);
                let exists = c & 1 == 0;
                let vs = vars_of_mask(b);
                let t = tt_quant(slots[i].1, exists, &vs);
                let name = format!("t{si}");
                let n = session
                    .quantify(exists, &slots[i].0, &vs, Some(name.as_str()), &mut budget)
                    .expect("quantify");
                slots.push((name, t));
                answers.push(format!("quant:{n}"));
            }
            2 => {
                let (i, j) = (pick(a), pick(b));
                let v = c as usize % NV;
                let t = tt_compose(slots[i].1, v, slots[j].1);
                let name = format!("t{si}");
                let n = session
                    .compose(
                        &slots[i].0,
                        v,
                        &slots[j].0,
                        Some(name.as_str()),
                        &mut budget,
                    )
                    .expect("compose");
                slots.push((name, t));
                answers.push(format!("compose:{n}"));
            }
            3 => {
                let i = pick(a);
                let count = session.sat_count(&slots[i].0, &mut budget).expect("count");
                assert_eq!(
                    count,
                    u128::from(slots[i].1.count_ones()),
                    "sat_count vs shadow at step {si}"
                );
                answers.push(format!("count:{count}"));
            }
            4 => {
                let i = pick(a);
                let m = u32::from(b) % ROWS;
                let v: Vec<bool> = (0..NV).map(|x| (m >> x) & 1 == 1).collect();
                let value = session.eval(&slots[i].0, &v).expect("eval");
                assert_eq!(
                    value,
                    (slots[i].1 >> m) & 1 == 1,
                    "eval vs shadow at step {si}"
                );
                answers.push(format!("eval:{value}"));
            }
            _ => {
                let (i, j) = (pick(a), pick(b));
                let out = session
                    .cec(&slots[i].0, &slots[j].0, &mut budget)
                    .expect("cec");
                assert_eq!(
                    out.equivalent,
                    slots[i].1 == slots[j].1,
                    "cec verdict vs shadow at step {si}"
                );
                let d = out.distinguishing.unwrap_or(0);
                assert_eq!(
                    d,
                    u128::from((slots[i].1 ^ slots[j].1).count_ones()),
                    "distinguishing count vs shadow at step {si}"
                );
                answers.push(format!("cec:{}:{d}", out.equivalent));
            }
        }
    }
    answers
}

/// The isolation/determinism contract: concurrent interleaved sessions
/// answer exactly like fresh sessions run one at a time.
fn assert_interleaved_matches_sequential<B: SessionBackend>(
    base: &Arc<SharedBase<B>>,
    scripts: &[Vec<Step>],
) {
    let concurrent: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|steps| {
                scope.spawn(move || {
                    let mut session = base.session();
                    run_script(&mut session, steps)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let sequential: Vec<Vec<String>> = scripts
        .iter()
        .map(|steps| {
            let mut session = base.session();
            run_script(&mut session, steps)
        })
        .collect();
    assert_eq!(concurrent, sequential, "interleaving changed an answer");
}

fn publish_base<B: SessionBackend>(backend: B) -> Arc<SharedBase<B>> {
    publish_networks_on(backend, &[&serving_net()]).expect("publish")
}

// ── Deterministic threaded stress, all four backends ─────────────────────

/// A fixed PRNG script set exercised on every backend: 4 concurrent
/// sessions × 24 steps, compared against sequential, plus the no-leak
/// postcondition.
fn threaded_stress<B: SessionBackend>(backend: B) {
    let base = publish_base(backend);
    let mut state = 0x5EED_CAFEu64;
    let mut rng = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 24) as u8
    };
    let scripts: Vec<Vec<Step>> = (0..4)
        .map(|_| (0..24).map(|_| (rng(), rng(), rng(), rng())).collect())
        .collect();
    assert_interleaved_matches_sequential(&base, &scripts);
    let t = base.tracker();
    assert_eq!(t.sessions_live(), 0, "all stress sessions dropped");
    assert_eq!(t.overlay_nodes(), 0, "no overlay leak after the stress");
}

#[test]
fn threaded_sessions_deterministic_bbdd() {
    threaded_stress(Bbdd::new(NV));
}

#[test]
fn threaded_sessions_deterministic_robdd() {
    threaded_stress(Robdd::new(NV));
}

#[test]
fn threaded_sessions_deterministic_par_bbdd() {
    threaded_stress(ParBbdd::new(NV, 2));
}

#[test]
fn threaded_sessions_deterministic_par_robdd() {
    threaded_stress(ParRobdd::new(NV, 2));
}

// ── Epoch lifecycle: publish chains and snapshot retirement ──────────────

fn epoch_lifecycle<B: SessionBackend>(backend: B) {
    let base1 = publish_base(backend);
    let tracker = Arc::clone(base1.tracker());
    assert_eq!(base1.epoch(), 1);
    assert_eq!(tracker.snapshots_live(), 1);
    assert_eq!(tracker.snapshots_retired(), 0);

    // A session derives a new function and publishes: same lineage, next
    // epoch, and the derived name is now part of the library.
    let mut s = base1.session();
    let mut budget = OpBudget::unlimited();
    s.apply(BoolOp::XOR, "par", "mix", Some("twist"), &mut budget)
        .expect("derive");
    let base2 = s.publish();
    assert_eq!(base2.epoch(), 2);
    assert!(
        Arc::ptr_eq(base2.tracker(), &tracker),
        "one lineage, one tracker"
    );
    assert_eq!(tracker.published(), 1, "session commits count as publishes");
    assert_eq!(tracker.snapshots_live(), 2, "both epochs still referenced");
    assert_eq!(tracker.snapshots_retired(), 0, "nothing retired while held");

    // The OLD snapshot keeps serving while anyone holds it — retirement
    // is strictly drop-driven, never early.
    let shadow_twist = shadow_par() ^ shadow_mix();
    for m in 0..ROWS {
        let v: Vec<bool> = (0..NV).map(|i| (m >> i) & 1 == 1).collect();
        assert_eq!(base1.eval("par", &v), Some((shadow_par() >> m) & 1 == 1));
        assert_eq!(
            base1.eval("twist", &v),
            None,
            "epoch 1 must not see epoch 2 names"
        );
        assert_eq!(base2.eval("twist", &v), Some((shadow_twist >> m) & 1 == 1));
    }

    // Dropping the old snapshot retires exactly it; the new epoch and any
    // sessions forked from it are untouched.
    drop(base1);
    assert_eq!(tracker.snapshots_live(), 1);
    assert_eq!(tracker.snapshots_retired(), 1);
    let mut s2 = base2.session();
    assert!(s2
        .eval("twist", &[true, false, false, false, false])
        .expect("fork of epoch 2"));
    drop(s2);
    drop(base2);
    assert_eq!(tracker.snapshots_live(), 0);
    assert_eq!(tracker.snapshots_retired(), 2);
    assert_eq!(tracker.sessions_live(), 0);
    assert_eq!(tracker.overlay_nodes(), 0, "lineage fully reclaimed");
}

#[test]
fn epoch_lifecycle_bbdd() {
    epoch_lifecycle(Bbdd::new(NV));
}

#[test]
fn epoch_lifecycle_robdd() {
    epoch_lifecycle(Robdd::new(NV));
}

#[test]
fn epoch_lifecycle_par_bbdd() {
    epoch_lifecycle(ParBbdd::new(NV, 2));
}

#[test]
fn epoch_lifecycle_par_robdd() {
    epoch_lifecycle(ParRobdd::new(NV, 2));
}

// ── Serve front door: batch answers are session-count invariant ──────────

#[test]
fn serve_batch_is_session_count_invariant() {
    use bbdd_suite::serve::{run_batch, ServeConfig};
    let base = publish_base(Bbdd::new(NV));
    let lines: Vec<String> = (0..30)
        .map(|i| match i % 5 {
            0 => format!(
                r#"{{"op":"eval","id":{i},"f":"par","assignment":[{},{},{},false,true]}}"#,
                i % 2 == 0,
                i % 3 == 0,
                i % 7 == 0
            ),
            1 => format!(r#"{{"op":"sat_count","id":{i},"f":"mix"}}"#),
            2 => format!(r#"{{"op":"cec","id":{i},"f":"par","g":"mix"}}"#),
            3 => format!(r#"{{"op":"node_count","id":{i},"f":"par"}}"#),
            _ => format!(r#"{{"op":"quantify","id":{i},"kind":"forall","f":"mix","vars":[3,4]}}"#),
        })
        .collect();
    let reference = run_batch(&base, &ServeConfig::default(), &lines);
    assert_eq!(reference.rejected, 0);
    for sessions in [2, 4] {
        let out = run_batch(
            &base,
            &ServeConfig {
                sessions,
                ..ServeConfig::default()
            },
            &lines,
        );
        assert_eq!(
            out.responses, reference.responses,
            "{sessions}-session batch diverged from single-session"
        );
    }
    assert_eq!(
        base.tracker().overlay_nodes(),
        0,
        "serve sessions reclaimed"
    );
}

// ── Randomized interleaving properties ───────────────────────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn interleaved_sessions_bit_identical_bbdd(
        scripts in proptest::collection::vec(
            proptest::collection::vec(
                (0u8..6, any::<u8>(), any::<u8>(), any::<u8>()), 1..16),
            2..5),
    ) {
        assert_interleaved_matches_sequential(&publish_base(Bbdd::new(NV)), &scripts);
    }

    #[test]
    fn interleaved_sessions_bit_identical_robdd(
        scripts in proptest::collection::vec(
            proptest::collection::vec(
                (0u8..6, any::<u8>(), any::<u8>(), any::<u8>()), 1..16),
            2..5),
    ) {
        assert_interleaved_matches_sequential(&publish_base(Robdd::new(NV)), &scripts);
    }

    #[test]
    fn interleaved_sessions_bit_identical_par_bbdd(
        scripts in proptest::collection::vec(
            proptest::collection::vec(
                (0u8..6, any::<u8>(), any::<u8>(), any::<u8>()), 1..12),
            2..4),
    ) {
        assert_interleaved_matches_sequential(&publish_base(ParBbdd::new(NV, 2)), &scripts);
    }

    #[test]
    fn interleaved_sessions_bit_identical_par_robdd(
        scripts in proptest::collection::vec(
            proptest::collection::vec(
                (0u8..6, any::<u8>(), any::<u8>(), any::<u8>()), 1..12),
            2..4),
    ) {
        assert_interleaved_matches_sequential(&publish_base(ParRobdd::new(NV, 2)), &scripts);
    }
}

//! The reorder-torture conformance suite for the dynamic-variable-ordering
//! engine (`ddcore::dvo`): **semantic invariance under every strategy ×
//! schedule combination**, on all four managers (the parallel pair at
//! thread counts 1 and 4), proven against 32-entry shadow truth tables —
//! including scheduled sifts that fire mid-construction and scheduled
//! sifts that *abort* mid-move under an injected budget.
//!
//! Everything runs through the `ddcore::api` trait family only: the same
//! driver torture-tests `bbdd`, `robdd` and both parallel front-ends, so a
//! backend can only pass by implementing the whole reorder contract
//! (policy install, strategy dispatch, scheduled firing, budgeted abort
//! with order park-back, `set_order`).

use bbdd::prelude::*;
use ddcore::dvo::{DvoPolicy, DvoStrategy, ReorderSchedule};
use ddcore::govern::{OpAbort, OpBudget};
use robdd::prelude::*;

const NV: usize = 5;
const ROWS: u32 = 32;

/// Truth table of variable `v`: row `m` has variable `v` = bit `v` of `m`.
fn tt_var(v: usize) -> u32 {
    let mut t = 0u32;
    for m in 0..ROWS {
        if (m >> v) & 1 == 1 {
            t |= 1 << m;
        }
    }
    t
}

fn assignment_of(m: u32) -> Vec<bool> {
    (0..NV).map(|v| (m >> v) & 1 == 1).collect()
}

/// Every surviving handle must still denote its shadow table, bit by bit.
fn check_all<F: BooleanFunction>(label: &str, pool: &[(F, u32)]) {
    for (i, (f, tt)) in pool.iter().enumerate() {
        for m in 0..ROWS {
            assert_eq!(
                f.eval(&assignment_of(m)),
                (tt >> m) & 1 == 1,
                "{label}: handle {i} disagrees with its shadow table on row {m}"
            );
        }
        assert_eq!(
            f.sat_count(),
            u128::from(tt.count_ones()),
            "{label}: handle {i} sat_count"
        );
    }
}

/// The variable order must stay a permutation of `0..NV` at all times.
fn check_order<M: FunctionManager>(label: &str, mgr: &M) {
    let mut order = mgr.variable_order();
    order.sort_unstable();
    assert_eq!(
        order,
        (0..NV).collect::<Vec<_>>(),
        "{label}: order must stay a permutation"
    );
}

/// A deterministic entangled workload: literals plus LCG-chosen binary
/// combinations, kept alive with their shadow tables. Grows enough nodes
/// to give growth/creation schedules something to fire on.
fn workload<M: FunctionManager>(mgr: &M, rounds: usize) -> Vec<(M::Function, u32)> {
    let mut pool: Vec<(M::Function, u32)> = Vec::new();
    for v in 0..NV {
        pool.push((mgr.var(v), tt_var(v)));
    }
    let mut state = 0xD1CE_5EEDu64;
    for _ in 0..rounds {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let i = (state >> 18) as usize % pool.len();
        let j = (state >> 34) as usize % pool.len();
        let (f, tf) = (&pool[i].0, pool[i].1);
        let (g, tg) = (&pool[j].0, pool[j].1);
        let (h, th) = match (state >> 50) % 4 {
            0 => (f.and(g), tf & tg),
            1 => (f.or(g), tf | tg),
            2 => (f.xor(g), tf ^ tg),
            _ => (f.xnor(g), !(tf ^ tg)),
        };
        pool.push((h, th));
        // The documented collection gate generic drivers poll — a due
        // scheduled reorder fires here, mid-workload.
        if pool.len() % 7 == 0 {
            mgr.collect();
        }
    }
    pool
}

const STRATEGIES: [DvoStrategy; 4] = [
    DvoStrategy::Full,
    DvoStrategy::Window(1),
    DvoStrategy::Window(2),
    DvoStrategy::Pair,
];

fn schedules() -> [ReorderSchedule; 4] {
    [
        ReorderSchedule::Never,
        ReorderSchedule::NodeThreshold(24),
        ReorderSchedule::GrowthFactor(1.5),
        ReorderSchedule::EveryCreations(64),
    ]
}

/// One strategy × schedule cell: install the policy, run the entangled
/// workload with collection gates, reorder explicitly, install an
/// adversarial static order — the truth tables must survive all of it.
fn torture_cell<M: FunctionManager>(mgr: &M, policy: DvoPolicy) {
    let label = format!("policy {policy}");
    mgr.set_reorder_policy(Some(policy));
    assert_eq!(mgr.reorder_policy(), Some(policy), "{label}: install");
    // The GC latch boundary is the schedule's in-operation firing point.
    mgr.set_gc_threshold(16);

    let pool = workload(mgr, 40);
    check_all(&label, &pool);
    check_order(&label, mgr);

    // Explicit reorder runs the installed policy's strategy.
    let n = mgr
        .reorder()
        .expect("all four managers support dynamic reordering");
    assert_eq!(n, mgr.live_nodes(), "{label}: reorder reports live count");
    check_all(&format!("{label} after explicit reorder"), &pool);
    check_order(&label, mgr);

    // An adversarial static order (reversed) must also preserve handles.
    let reversed: Vec<usize> = (0..NV).rev().collect();
    assert!(mgr.set_order(&reversed), "{label}: set_order supported");
    check_all(&format!("{label} after reversed set_order"), &pool);
    check_order(&label, mgr);

    // And every *other* strategy must be runnable over the same diagram
    // regardless of the installed policy.
    for strategy in STRATEGIES {
        mgr.reorder_with(strategy)
            .expect("strategy dispatch supported");
        check_all(&format!("{label} after reorder_with {strategy}"), &pool);
        check_order(&label, mgr);
    }

    drop(pool);
    mgr.set_reorder_policy(None);
    assert_eq!(mgr.reorder_policy(), None, "{label}: clear");
    mgr.gc();
    assert_eq!(mgr.external_roots(), 0, "{label}: registry drains");
    assert_eq!(mgr.live_nodes(), 0, "{label}: no leaked nodes");
}

/// Budget-aborted sifts: explicit `try_reorder_with` at several injected
/// checkpoints, and a *scheduled* sift aborted inside the governed
/// collection gate. On every abort the order is consistent, every handle
/// still evaluates correctly and the manager stays fully usable.
fn abort_cell<M: FunctionManager>(mgr: &M, strategy: DvoStrategy) {
    let label = format!("abort {strategy}");
    let pool = workload(mgr, 30);

    for checkpoint in [1u64, 2, 3, 5, 8] {
        let mut budget = OpBudget::unlimited().inject_cancel_at(checkpoint);
        match mgr.try_reorder_with(strategy, &mut budget) {
            Some(Err(OpAbort::Cancelled)) => {}
            Some(Ok(_)) => {} // strategy finished before the checkpoint
            other => panic!("{label}: unexpected result {other:?}"),
        }
        check_order(&format!("{label} checkpoint {checkpoint}"), mgr);
        check_all(&format!("{label} checkpoint {checkpoint}"), &pool);
    }

    // Scheduled firing through the governed gate: arm an immediately-due
    // schedule, then collect under a budget that dies at the first
    // checkpoint. try_collect must surface the abort, consume the trigger
    // (no re-fire storm) and leave everything consistent.
    mgr.set_reorder_policy(Some(DvoPolicy {
        strategy,
        schedule: ReorderSchedule::NodeThreshold(1),
    }));
    let mut budget = OpBudget::unlimited().inject_cancel_at(1);
    match mgr.try_collect(&mut budget) {
        Err(OpAbort::Cancelled) => {}
        Ok(_) => panic!("{label}: a due scheduled sift must hit the injected cancel"),
        Err(other) => panic!("{label}: wrong abort reason {other}"),
    }
    check_order(&format!("{label} scheduled abort"), mgr);
    check_all(&format!("{label} scheduled abort"), &pool);
    // The trigger was consumed: the next governed gate must not re-fire
    // immediately (the workload has not grown since).
    assert_eq!(
        mgr.try_collect(&mut OpBudget::unlimited()),
        Ok(false),
        "{label}: aborted scheduled sift must consume its trigger"
    );
    // An unbudgeted reorder completes and the handles still check out.
    mgr.reorder().expect("reorder after aborted schedule");
    check_all(&format!("{label} post-abort reorder"), &pool);

    drop(pool);
    mgr.set_reorder_policy(None);
    mgr.gc();
    assert_eq!(mgr.external_roots(), 0, "{label}: registry drains");
    assert_eq!(mgr.live_nodes(), 0, "{label}: no leaked nodes");
}

macro_rules! dvo_suite {
    ($($name:ident => $mk:expr;)*) => {$(
        mod $name {
            use super::*;

            #[test]
            fn every_strategy_times_schedule_preserves_semantics() {
                for strategy in STRATEGIES {
                    for schedule in schedules() {
                        let mgr = $mk;
                        torture_cell(&mgr, DvoPolicy { strategy, schedule });
                    }
                }
            }

            #[test]
            fn aborted_sifts_leave_a_consistent_manager() {
                for strategy in STRATEGIES {
                    let mgr = $mk;
                    abort_cell(&mgr, strategy);
                }
            }
        }
    )*};
}

fn par_bbdd(threads: usize) -> ParBbddManager {
    ParBbddManager::new(ParBbdd::with_config(
        NV,
        bbdd::ParConfig {
            threads,
            cutoff: 0,
            split_depth: Some(2),
            cache_ways: 1 << 10,
            shards: 8,
        },
    ))
}

fn par_robdd(threads: usize) -> ParRobddManager {
    ParRobddManager::new(ParRobdd::with_config(
        NV,
        robdd::ParConfig {
            threads,
            cutoff: 0,
            split_depth: Some(2),
            cache_ways: 1 << 10,
            shards: 8,
        },
    ))
}

dvo_suite! {
    bbdd_dvo => BbddManager::with_vars(NV);
    robdd_dvo => RobddManager::with_vars(NV);
    par_bbdd_dvo_t1 => par_bbdd(1);
    par_bbdd_dvo_t4 => par_bbdd(4);
    par_robdd_dvo_t1 => par_robdd(1);
    par_robdd_dvo_t4 => par_robdd(4);
}

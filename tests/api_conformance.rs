//! The `ddcore::api` conformance suite: every [`BooleanFunction`] /
//! [`FunctionManager`] operation, exercised against 32-entry shadow truth
//! tables, macro-instantiated for **all four managers** (the parallel
//! pair at thread counts 1 and 4).
//!
//! Everything below runs through the trait API only — no edge-level
//! calls, no backend-specific methods. This is the single suite that
//! replaces the per-crate copies of the handle-operation property tests:
//! a fifth backend gets full op coverage by adding one line to the macro
//! invocation at the bottom.

use bbdd::prelude::*;
use ddcore::govern::{CancelToken, OpAbort, OpBudget};
use ddcore::obs;
use ddcore::MetricKind;
use robdd::prelude::*;
use std::time::{Duration, Instant};

const NV: usize = 5;
const ROWS: u32 = 32;

/// Truth table of variable `v`: row `m` has variable `v` = bit `v` of `m`.
fn tt_var(v: usize) -> u32 {
    let mut t = 0u32;
    for m in 0..ROWS {
        if (m >> v) & 1 == 1 {
            t |= 1 << m;
        }
    }
    t
}

fn tt_restrict(t: u32, v: usize, value: bool) -> u32 {
    let mut r = 0u32;
    for m in 0..ROWS {
        let source = if value { m | (1 << v) } else { m & !(1 << v) };
        if (t >> source) & 1 == 1 {
            r |= 1 << m;
        }
    }
    r
}

fn tt_exists(t: u32, vars: &[usize]) -> u32 {
    vars.iter().fold(t, |t, &v| {
        tt_restrict(t, v, true) | tt_restrict(t, v, false)
    })
}

fn tt_forall(t: u32, vars: &[usize]) -> u32 {
    vars.iter().fold(t, |t, &v| {
        tt_restrict(t, v, true) & tt_restrict(t, v, false)
    })
}

/// Row index of `assignment`.
fn row_of(assignment: &[bool]) -> u32 {
    assignment
        .iter()
        .enumerate()
        .fold(0, |m, (v, &b)| if b { m | (1 << v) } else { m })
}

fn assignment_of(m: u32) -> Vec<bool> {
    (0..NV).map(|v| (m >> v) & 1 == 1).collect()
}

/// Check a handle against its shadow table through every query op.
fn check<F: BooleanFunction>(label: &str, f: &F, tt: u32) {
    for m in 0..ROWS {
        assert_eq!(
            f.eval(&assignment_of(m)),
            (tt >> m) & 1 == 1,
            "{label}: eval disagrees on row {m}"
        );
    }
    assert_eq!(
        f.sat_count(),
        u128::from(tt.count_ones()),
        "{label}: sat_count"
    );
    match f.any_sat() {
        Some(w) => {
            assert!(tt != 0, "{label}: any_sat on UNSAT");
            assert_eq!((tt >> row_of(&w)) & 1, 1, "{label}: any_sat not a model");
        }
        None => assert_eq!(tt, 0, "{label}: any_sat missed a model"),
    }
    let all = f.all_sat(ROWS as usize);
    assert_eq!(all.len(), tt.count_ones() as usize, "{label}: all_sat size");
    for w in &all {
        assert_eq!((tt >> row_of(w)) & 1, 1, "{label}: all_sat non-model");
    }
    let support = f.support();
    for v in 0..NV {
        let depends = tt_restrict(tt, v, true) != tt_restrict(tt, v, false);
        assert_eq!(
            support.contains(&v),
            depends,
            "{label}: support disagrees on variable {v}"
        );
    }
    assert_eq!(f.is_true(), tt == !0, "{label}: is_true");
    assert_eq!(f.is_false(), tt == 0, "{label}: is_false");
    assert_eq!(f.is_constant(), tt == 0 || tt == !0, "{label}: is_constant");
    if f.is_constant() {
        assert_eq!(f.node_count(), 0, "{label}: constants have no nodes");
    } else {
        assert!(f.node_count() > 0, "{label}: node_count");
    }
}

/// A deterministic pool of (handle, shadow-table) pairs to draw operands
/// from: literals, constants and a few composites.
fn pool<M: FunctionManager>(mgr: &M) -> Vec<(M::Function, u32)> {
    let mut pool: Vec<(M::Function, u32)> = Vec::new();
    pool.push((mgr.constant(false), 0));
    pool.push((mgr.constant(true), !0));
    for v in 0..NV {
        pool.push((mgr.var(v), tt_var(v)));
        pool.push((mgr.nvar(v), !tt_var(v)));
    }
    // Composites seeded by a fixed LCG so every backend sees the same mix.
    let mut state = 0xD1CE_5EEDu64;
    for _ in 0..12 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let i = (state >> 18) as usize % pool.len();
        let j = (state >> 34) as usize % pool.len();
        let op = BoolOp::from_table((state >> 50) as u8 % 16);
        let tt = {
            let mut t = 0u32;
            for m in 0..ROWS {
                if op.eval((pool[i].1 >> m) & 1 == 1, (pool[j].1 >> m) & 1 == 1) {
                    t |= 1 << m;
                }
            }
            t
        };
        let f = pool[i].0.apply(op, &pool[j].0);
        pool.push((f, tt));
    }
    pool
}

/// The conformance body, generic over the manager: every trait operation
/// against the shadow model.
fn conformance<M: FunctionManager>(mgr: &M) {
    assert_eq!(mgr.num_vars(), NV);
    assert_eq!(mgr.variable_order().len(), NV);
    let pool = pool(mgr);
    for (f, tt) in &pool {
        check("pool", f, *tt);
    }

    // Binary ops: all 16 operators over a sample of operand pairs, plus
    // the named wrappers.
    for (i, j) in [(0usize, 1usize), (2, 4), (3, 17), (10, 15), (16, 18)] {
        let (fi, ti) = &pool[i % pool.len()];
        let (fj, tj) = &pool[j % pool.len()];
        for op in BoolOp::all() {
            let mut tt = 0u32;
            for m in 0..ROWS {
                if op.eval((ti >> m) & 1 == 1, (tj >> m) & 1 == 1) {
                    tt |= 1 << m;
                }
            }
            check("apply", &fi.apply(op, fj), tt);
        }
        check("and", &fi.and(fj), ti & tj);
        check("or", &fi.or(fj), ti | tj);
        check("xor", &fi.xor(fj), ti ^ tj);
        check("xnor", &fi.xnor(fj), !(ti ^ tj));
        check("nand", &fi.nand(fj), !(ti & tj));
        check("nor", &fi.nor(fj), !(ti | tj));
        check("imp", &fi.imp(fj), !ti | tj);
        check("not", &fi.not(), !ti);
    }

    // ITE over operand triples.
    for (i, j, k) in [(2usize, 4usize, 6usize), (12, 3, 18), (17, 16, 5)] {
        let (fi, ti) = &pool[i % pool.len()];
        let (fj, tj) = &pool[j % pool.len()];
        let (fk, tk) = &pool[k % pool.len()];
        check("ite", &fi.ite(fj, fk), (ti & tj) | (!ti & tk));
    }

    // Quantification, restriction, cofactors over several cubes.
    for (idx, mask) in [(14usize, 0b00101u8), (16, 0b11010), (18, 0b00011)] {
        let (f, tt) = &pool[idx % pool.len()];
        let vars: Vec<usize> = (0..NV).filter(|v| (mask >> v) & 1 == 1).collect();
        check("exists", &f.exists(&vars), tt_exists(*tt, &vars));
        check("forall", &f.forall(&vars), tt_forall(*tt, &vars));
        let (g, tg) = &pool[(idx + 3) % pool.len()];
        check(
            "and_exists",
            &f.and_exists(g, &vars),
            tt_exists(tt & tg, &vars),
        );
        let v = vars[0];
        check("restrict1", &f.restrict(v, true), tt_restrict(*tt, v, true));
        check(
            "restrict0",
            &f.restrict(v, false),
            tt_restrict(*tt, v, false),
        );
        let (hi, lo) = f.cofactors(v);
        check("cofactor_hi", &hi, tt_restrict(*tt, v, true));
        check("cofactor_lo", &lo, tt_restrict(*tt, v, false));
    }

    // Composition: single substitution vs the simultaneous form.
    {
        let (f, tf) = &pool[16 % pool.len()];
        let (g, tg) = &pool[9 % pool.len()];
        let var = 2;
        let expect = (tg & tt_restrict(*tf, var, true)) | (!tg & tt_restrict(*tf, var, false));
        check("compose", &f.compose(var, g), expect);
        let mut subs: Vec<Option<M::Function>> = vec![None; NV];
        subs[var] = Some(g.clone());
        check("vector_compose", &f.vector_compose(&subs), expect);
        // Simultaneous swap of two variables — the case single composes
        // cannot express.
        let mut swap: Vec<Option<M::Function>> = vec![None; NV];
        swap[0] = Some(mgr.var(1));
        swap[1] = Some(mgr.var(0));
        let mut expect_swap = 0u32;
        for m in 0..ROWS {
            let b0 = (m >> 1) & 1; // new value of variable 0
            let b1 = m & 1;
            let source = (m & !0b11) | (b0) | (b1 << 1);
            if (tf >> source) & 1 == 1 {
                expect_swap |= 1 << m;
            }
        }
        check("vector_compose_swap", &f.vector_compose(&swap), expect_swap);
    }

    // Manager-level surface: shared counts, GC accounting, DOT export.
    let handles: Vec<M::Function> = pool.iter().map(|(f, _)| f.clone()).collect();
    assert!(mgr.shared_node_count(&handles) > 0);
    let dot = mgr.to_dot(&handles[..2], &["a", "b"]);
    assert!(!dot.is_empty(), "to_dot must render something");
    let profile = mgr
        .level_profile(&handles)
        .expect("all four backends expose a level profile");
    assert_eq!(profile.len(), NV);
    assert_eq!(
        profile.iter().sum::<usize>(),
        mgr.shared_node_count(&handles),
        "level profile must account for every reachable node"
    );
    drop(handles);
    drop(pool);
    mgr.gc();
    assert_eq!(mgr.external_roots(), 0, "registry drains");
    assert_eq!(mgr.live_nodes(), 0, "sink-only after all handles drop");
    assert_eq!(mgr.gc_threshold(), 0);
    mgr.set_gc_threshold(64);
    assert_eq!(mgr.gc_threshold(), 64);
    mgr.collect();

    // Manager identity round-trips through handles.
    let f = mgr.var(0);
    let same = f.manager().var(0);
    assert_eq!(f, same, "manager() addresses the same backend");
}

/// The `try_*` conformance section: governed ops agree with their
/// infallible twins under an unlimited budget, every abort reason
/// surfaces through the trait, and the manager stays usable after each
/// abort.
fn govern_conformance<M: FunctionManager>(mgr: &M) {
    // Fresh, entangled operands so the governed ops do real work (a
    // cache-hit op passes no checkpoints and cannot abort).
    let parity = |mgr: &M, budget: &mut OpBudget| -> Result<M::Function, OpAbort> {
        let mut acc = mgr.var(0);
        for v in 1..NV {
            acc = acc.try_xor(&mgr.var(v), budget)?;
        }
        Ok(acc)
    };
    let parity_tt = (0..NV).fold(0u32, |t, v| t ^ tt_var(v));

    // Unlimited budget: same result as the infallible op, no abort.
    let f = parity(mgr, &mut OpBudget::unlimited()).expect("unlimited budget never aborts");
    check("try parity", &f, parity_tt);
    let g = f
        .try_ite(&mgr.var(1), &mgr.var(3), &mut OpBudget::unlimited())
        .expect("ite");
    check(
        "try ite",
        &g,
        (parity_tt & tt_var(1)) | (!parity_tt & tt_var(3)),
    );
    assert_eq!(
        f.try_sat_count(&mut OpBudget::unlimited()),
        Ok(f.sat_count()),
        "governed counting agrees"
    );
    assert_eq!(
        f.sat_count_checked(),
        Some(f.sat_count()),
        "checked counting agrees at 5 variables"
    );
    assert_eq!(
        f.try_exists(&[0, 2], &mut OpBudget::unlimited()).as_ref(),
        Ok(&f.exists(&[0, 2])),
        "governed quantification agrees"
    );
    drop(g);
    drop(f);
    mgr.gc();

    // Each abort reason surfaces, and the manager survives every abort:
    // the same parity build completes infallibly right after.
    let aborts: Vec<(&str, OpBudget, OpAbort)> = vec![
        (
            "node budget",
            OpBudget::unlimited().with_node_limit(1),
            OpAbort::NodeBudget,
        ),
        (
            "deadline",
            OpBudget::unlimited()
                .with_deadline(Instant::now() - Duration::from_millis(1))
                .with_poll_stride(1),
            OpAbort::Deadline,
        ),
        (
            "cancelled",
            {
                let token = CancelToken::new();
                token.cancel();
                OpBudget::unlimited()
                    .with_cancel(&token)
                    .with_poll_stride(1)
            },
            OpAbort::Cancelled,
        ),
    ];
    for (label, mut budget, expect) in aborts {
        let res = parity(mgr, &mut budget);
        assert_eq!(res.err(), Some(expect), "{label}: abort reason");
        mgr.gc();
        // Usable after the abort, and no leaked registry slots.
        let f = parity(mgr, &mut OpBudget::unlimited()).expect("post-abort build");
        check(&format!("post-{label} parity"), &f, parity_tt);
        drop(f);
        mgr.gc();
        assert_eq!(mgr.external_roots(), 0, "{label}: registry drains");
        assert_eq!(mgr.live_nodes(), 0, "{label}: no leaked nodes");
    }

    // One budget spans a multi-op request: node headroom depletes across
    // calls until the request as a whole runs out.
    let mut budget = OpBudget::unlimited().with_node_limit(10_000);
    let before = budget.nodes_remaining();
    let f = parity(mgr, &mut budget).expect("plenty of headroom");
    assert!(
        budget.nodes_remaining() < before,
        "a governed op must deplete the shared budget"
    );
    drop(f);
    mgr.gc();

    // Governed reordering either aborts cleanly or is unsupported; both
    // answers must keep the manager consistent.
    let keep = parity(mgr, &mut OpBudget::unlimited()).expect("build for sift");
    match mgr.try_reorder(&mut OpBudget::unlimited().inject_cancel_at(1)) {
        None => assert!(mgr.reorder().is_none(), "capability answers must agree"),
        Some(res) => {
            assert_eq!(res, Err(OpAbort::Cancelled), "injection at checkpoint 1");
            let mut order = mgr.variable_order();
            order.sort_unstable();
            assert_eq!(
                order,
                (0..NV).collect::<Vec<_>>(),
                "order stays a permutation"
            );
            check("post-sift-abort parity", &keep, parity_tt);
        }
    }
    drop(keep);
    mgr.gc();
    assert_eq!(mgr.external_roots(), 0, "registry drains at section end");
    assert_eq!(mgr.live_nodes(), 0, "sink-only at section end");
}

/// The observability conformance section, on a **fresh** manager (the
/// gc-balance invariants need a complete creation/collection history):
/// metric invariants every backend's [`FunctionManager::metrics`]
/// registry must satisfy, under the registry's stable dotted names.
fn obs_conformance<M: FunctionManager>(mgr: &M) {
    let s0 = mgr.metrics();
    assert!(!s0.backend().is_empty(), "snapshot names its backend");

    // Work the registry: a pool of composites plus one governed op.
    let pool = pool(mgr);
    let s1 = mgr.metrics();

    // Every section of the unified tree is present and populated.
    for section in [
        "nodes", "ops", "cache", "table", "gc", "roots", "dvo", "govern",
    ] {
        assert!(
            s1.entries()
                .iter()
                .any(|m| m.name.starts_with(section) && m.name.as_bytes()[section.len()] == b'.'),
            "section {section}.* present on {}",
            s1.backend()
        );
    }

    // Cache accounting closes: hits + misses == lookups.
    assert_eq!(
        s1.get("cache.hits").unwrap() + s1.get("cache.misses").unwrap(),
        s1.get("cache.lookups").unwrap(),
        "cache hits + misses == lookups on {}",
        s1.backend()
    );

    // Counters are monotonic across snapshots.
    for m in s1
        .entries()
        .iter()
        .filter(|m| m.kind == MetricKind::Counter)
    {
        assert!(
            m.value >= s0.get(m.name).unwrap_or(0),
            "counter {} monotonic on {}",
            m.name,
            s1.backend()
        );
    }

    // A governed op moves the govern.* section.
    let f = pool[3]
        .0
        .try_xor(
            &pool[7].0,
            &mut OpBudget::unlimited().with_node_limit(1 << 20),
        )
        .expect("huge budget");
    let s2 = mgr.metrics();
    assert!(
        s2.get("govern.ops").unwrap() > s1.get("govern.ops").unwrap_or(0),
        "governed op counted on {}",
        s2.backend()
    );

    // Snapshot/delta consistency: earlier + delta == later, per counter.
    let d = s2.delta(&s1);
    for m in s2
        .entries()
        .iter()
        .filter(|m| m.kind == MetricKind::Counter)
    {
        assert_eq!(
            s1.get(m.name).unwrap_or(0) + d.get(m.name).unwrap(),
            m.value,
            "delta consistency for {} on {}",
            m.name,
            s2.backend()
        );
    }

    // All handles dropped + GC ⇒ the books balance: nothing live, the
    // registry drained, and every node ever created was eventually freed.
    drop(f);
    drop(pool);
    mgr.gc();
    let s3 = mgr.metrics();
    assert_eq!(s3.get("nodes.live"), Some(0), "live after full drop");
    assert_eq!(s3.get("roots.live"), Some(0), "registry after full drop");
    assert_eq!(
        s3.get("nodes.created"),
        s3.get("gc.nodes_freed"),
        "created == freed once nothing is live on {}",
        s3.backend()
    );
    assert_eq!(
        s3.get("roots.registered").unwrap() + s3.get("roots.retained").unwrap(),
        s3.get("roots.released").unwrap(),
        "root registrations + retains == releases on {}",
        s3.backend()
    );
}

/// Instantiate the suite (plus the operator-overload sugar, which lives
/// on the concrete handle type) for one backend per line.
macro_rules! conformance_suite {
    ($($name:ident => $mgr:expr;)*) => {$(
        #[test]
        fn $name() {
            let mgr = $mgr;
            conformance(&mgr);
            govern_conformance(&mgr);
            // Observability invariants run on a fresh manager: the
            // gc-balance checks need the full creation history.
            obs_conformance(&$mgr);
            // `std::ops` sugar on handle references — concrete types only.
            let a = mgr.var(0);
            let b = mgr.var(1);
            assert_eq!(&a & &b, a.and(&b));
            assert_eq!(&a | &b, a.or(&b));
            assert_eq!(&a ^ &b, a.xor(&b));
            assert_eq!(!&a, a.not());
        }
    )*};
}

fn par_bbdd(threads: usize) -> ParBbddManager {
    ParBbddManager::new(ParBbdd::with_config(
        NV,
        bbdd::ParConfig {
            threads,
            cutoff: 0, // force the parallel pipeline on every operand size
            split_depth: Some(2),
            cache_ways: 1 << 10,
            shards: 8,
        },
    ))
}

fn par_robdd(threads: usize) -> ParRobddManager {
    ParRobddManager::new(ParRobdd::with_config(
        NV,
        robdd::ParConfig {
            threads,
            cutoff: 0,
            split_depth: Some(2),
            cache_ways: 1 << 10,
            shards: 8,
        },
    ))
}

conformance_suite! {
    bbdd_conformance => BbddManager::with_vars(NV);
    robdd_conformance => RobddManager::with_vars(NV);
    par_bbdd_conformance_t1 => par_bbdd(1);
    par_bbdd_conformance_t4 => par_bbdd(4);
    par_robdd_conformance_t1 => par_robdd(1);
    par_robdd_conformance_t4 => par_robdd(4);
}

/// Tracing conformance: every span begun on this thread is ended, even
/// when the traced operation dies mid-flight on a budget abort. The ring
/// is shared process-wide, so all assertions filter by [`obs::current_tid`]
/// (other tests may trace concurrently when `BBDD_TRACE` is set).
#[test]
fn trace_spans_balance_across_abort() {
    obs::set_trace_enabled(true);
    // A roomy private capacity so concurrent traced tests cannot evict
    // this thread's events between recording and the snapshot below.
    obs::trace_set_capacity(1 << 17);

    let mgr = BbddManager::with_vars(NV);
    // A one-node budget aborts the parity build inside the recursion,
    // after the op's span has opened.
    let mut budget = OpBudget::unlimited().with_node_limit(1);
    let aborted = (1..NV).try_fold(mgr.var(0), |acc, v| acc.try_xor(&mgr.var(v), &mut budget));
    assert!(aborted.is_err(), "one-node budget must abort");
    // And a healthy mix of ops on top, including a GC span.
    let pool = pool(&mgr);
    drop(pool);
    mgr.gc();

    let tid = obs::current_tid();
    let events: Vec<ddcore::TraceEvent> = obs::trace_events()
        .into_iter()
        .filter(|e| e.tid == tid)
        .collect();
    assert!(!events.is_empty(), "tracing recorded this thread's ops");

    // Per-op span depth never goes negative and ends the test at zero.
    let mut depth: std::collections::HashMap<obs::Op, i64> = std::collections::HashMap::new();
    let mut begins = 0u64;
    let mut abort_instants = 0u64;
    for e in &events {
        match e.kind {
            obs::EventKind::Begin => {
                begins += 1;
                *depth.entry(e.op).or_insert(0) += 1;
            }
            obs::EventKind::End => {
                let d = depth.entry(e.op).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "end without begin for {:?}", e.op);
            }
            obs::EventKind::Instant => {
                if e.op == obs::Op::Abort {
                    abort_instants += 1;
                }
            }
        }
    }
    assert!(begins > 0, "at least one span opened");
    assert!(
        abort_instants > 0,
        "the budget abort left an instant marker"
    );
    for (op, d) in &depth {
        assert_eq!(*d, 0, "unbalanced span for {op:?}");
    }
}

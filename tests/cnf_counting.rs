//! Cross-backend properties of the CNF front door (`cnf` crate):
//!
//! 1. **Exactness** — for random CNF instances up to 12 variables, the
//!    diagram-based model count over the declared universe equals the
//!    2^n brute-force count, on all four backends and all three clause
//!    schedules.
//! 2. **Slice invariance** — for k ∈ {0, 1, 2, 3}, the 2^k cofactor
//!    slice counts recombine bit-exactly to the whole count, sequential
//!    and fork-join alike, and per-slice budget aborts degrade the
//!    verdict to a `partial` lower bound instead of failing.
//! 3. **Order robustness** — CNF-derived static orders and mid-build DVO
//!    firings never change the count.
//! 4. **`sat_count_over` boundaries** — the 127/128-variable `u128`
//!    ceiling and the support-escape rule for narrowing universes.

use bbdd::prelude::*;
use cnf::{count_cnf, count_sliced, count_sliced_par, ClauseSchedule, Cnf, CnfOrder, Schedule};
use ddcore::govern::OpBudget;
use proptest::prelude::*;
use robdd::prelude::*;

/// Deterministic splitmix64 stream for the random-instance generator.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random CNF over `n_vars` with arbitrary clause widths (including
/// unit clauses, duplicate and complementary literals — the parser
/// accepts them, so the counter must handle them).
fn random_cnf(n_vars: usize, n_clauses: usize, seed: u64) -> Cnf {
    let mut s = seed;
    let mut out = Cnf::new(n_vars);
    for _ in 0..n_clauses {
        let width = 1 + (mix(&mut s) % 4) as usize;
        let lits: Vec<i32> = (0..width)
            .map(|_| {
                let v = (mix(&mut s) % n_vars as u64) as i32 + 1;
                if mix(&mut s) & 1 == 1 {
                    -v
                } else {
                    v
                }
            })
            .collect();
        out.add_clause(&lits);
    }
    out
}

fn whole_count<M: FunctionManager>(mgr: &M, inst: &Cnf, schedule: &Schedule) -> u128 {
    let mut budget = OpBudget::unlimited();
    count_cnf(mgr, inst, schedule, &mut budget)
        .expect("unlimited count")
        .0
}

/// The brute-force count, against every backend and every schedule.
fn assert_exact_everywhere(inst: &Cnf) {
    let expect = inst.brute_force_count().expect("≤ 24 vars");
    let n = inst.num_vars.max(1);
    for schedule in [Schedule::Input, Schedule::Bucket, Schedule::Force] {
        assert_eq!(
            whole_count(&BbddManager::with_vars(n), inst, &schedule),
            expect,
            "bbdd/{schedule}"
        );
        assert_eq!(
            whole_count(&RobddManager::with_vars(n), inst, &schedule),
            expect,
            "robdd/{schedule}"
        );
        assert_eq!(
            whole_count(&ParBbddManager::new(ParBbdd::new(n, 2)), inst, &schedule),
            expect,
            "par-bbdd/{schedule}"
        );
        assert_eq!(
            whole_count(&ParRobddManager::new(ParRobdd::new(n, 2)), inst, &schedule),
            expect,
            "par-robdd/{schedule}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_cnf_counts_match_brute_force(
        n_vars in 1usize..13,
        n_clauses in 0usize..30,
        seed in 0u64..1_000_000,
    ) {
        let inst = random_cnf(n_vars, n_clauses, seed);
        assert_exact_everywhere(&inst);
    }

    #[test]
    fn slice_counts_recombine_to_the_whole(
        n_vars in 3usize..11,
        n_clauses in 1usize..25,
        seed in 0u64..1_000_000,
    ) {
        let inst = random_cnf(n_vars, n_clauses, seed);
        let expect = inst.brute_force_count().expect("≤ 24 vars");
        let n = inst.num_vars.max(1);
        for k in 0usize..4 {
            let sliced = count_sliced(
                || BbddManager::with_vars(n),
                OpBudget::unlimited,
                &inst,
                &Schedule::Bucket,
                k,
            );
            prop_assert!(!sliced.partial, "unlimited slices never abort");
            prop_assert_eq!(sliced.total, expect, "k={}", k);
            prop_assert_eq!(sliced.completed(), sliced.slices.len());
            // The fork-join fan-out recombines to the same total for
            // every thread count.
            for threads in [1usize, 3] {
                let par = count_sliced_par(
                    threads,
                    || RobddManager::with_vars(n),
                    OpBudget::unlimited,
                    &inst,
                    &Schedule::Bucket,
                    k,
                );
                prop_assert_eq!(par.total, expect, "k={} threads={}", k, threads);
                prop_assert!(!par.partial);
            }
        }
    }
}

#[test]
fn parity_chain_counts_are_closed_form_on_all_backends() {
    // The BBDD headline case: x1 ⊕ … ⊕ xn = 1 has 2^(n-1) models over
    // the 2n-1 Tseitin-declared variables.
    for n in [1usize, 4, 8] {
        let inst = benchgen::cnf::parity_chain(n);
        assert_exact_everywhere(&inst);
        assert_eq!(
            whole_count(
                &BbddManager::with_vars(inst.num_vars),
                &inst,
                &Schedule::Bucket
            ),
            1u128 << (n - 1)
        );
    }
}

#[test]
fn budget_limited_slices_degrade_to_partial_lower_bound() {
    let inst = benchgen::cnf::parity_chain(6); // 11 vars, 32 models
    let n = inst.num_vars;
    let whole = whole_count(&BbddManager::with_vars(n), &inst, &Schedule::Bucket);
    assert_eq!(whole, 32);

    // A node budget far below any slice's build size: every slice
    // aborts, the verdict is partial, and the total is a lower bound.
    let starved = count_sliced(
        || BbddManager::with_vars(n),
        || OpBudget::unlimited().with_node_limit(10),
        &inst,
        &Schedule::Bucket,
        2,
    );
    assert!(starved.partial);
    assert_eq!(
        starved.completed() + starved.aborted(),
        starved.slices.len()
    );
    assert!(starved.aborted() > 0);
    assert!(starved.total <= whole);

    // Node budgets are deterministic, so the fork-join fan-out reaches
    // the identical partial verdict for every thread count.
    for threads in [1usize, 4] {
        let par = count_sliced_par(
            threads,
            || BbddManager::with_vars(n),
            || OpBudget::unlimited().with_node_limit(10),
            &inst,
            &Schedule::Bucket,
            2,
        );
        assert_eq!(par.total, starved.total, "threads={threads}");
        assert_eq!(par.partial, starved.partial);
        assert_eq!(par.completed(), starved.completed());
    }

    // Unlimited slices recombine exactly on the same instance.
    let exact = count_sliced(
        || BbddManager::with_vars(n),
        OpBudget::unlimited,
        &inst,
        &Schedule::Bucket,
        2,
    );
    assert!(!exact.partial);
    assert_eq!(exact.total, whole);
}

#[test]
fn cnf_static_orders_preserve_counts() {
    let inst = benchgen::cnf::random3(10, 32, 5);
    let expect = inst.brute_force_count().expect("10 vars");
    for order in [CnfOrder::Freq, CnfOrder::Force] {
        let perm = order.permutation(&inst).expect("non-trivial order");
        let mgr = BbddManager::with_vars(inst.num_vars);
        assert!(mgr.set_order(&perm), "bbdd reorders");
        assert_eq!(
            whole_count(&mgr, &inst, &Schedule::Bucket),
            expect,
            "{order}"
        );
        let mgr = RobddManager::with_vars(inst.num_vars);
        assert!(mgr.set_order(&perm), "robdd reorders");
        assert_eq!(
            whole_count(&mgr, &inst, &Schedule::Bucket),
            expect,
            "{order}"
        );
    }
}

#[test]
fn dvo_gates_fire_mid_build_without_changing_counts() {
    // More clauses than one CLAUSE_STRIDE so the build's collection
    // gates run with a hair-trigger reorder schedule installed.
    let inst = benchgen::cnf::random3(12, 90, 11);
    let expect = inst.brute_force_count().expect("12 vars");
    let mgr = BbddManager::with_vars(inst.num_vars);
    mgr.set_reorder_policy(Some("window2:nodes1".parse().expect("policy")));
    assert_eq!(whole_count(&mgr, &inst, &Schedule::Bucket), expect);
}

// ───────────────────── sat_count_over boundaries ──────────────────────────

#[test]
fn sat_count_over_at_the_127_variable_ceiling() {
    let mgr = BbddManager::with_vars(127);
    let f = mgr.var(0);
    assert_eq!(f.sat_count_over(127), Some(1u128 << 126));
    // 128 declared variables would need 2^128: not representable.
    assert_eq!(f.sat_count_over(128), None);
    let mut b = OpBudget::unlimited();
    assert_eq!(f.try_sat_count_over(128, &mut b).expect("no budget"), None);
    // The tautology's count is the full 2^127 assignment space.
    assert_eq!(mgr.constant(true).sat_count_over(127), Some(1u128 << 127));
}

#[test]
fn sat_count_over_narrows_and_widens_exactly() {
    let mgr = BbddManager::with_vars(3);
    let x0 = mgr.var(0);
    // Widening: each model extends freely over the extra variables.
    assert_eq!(x0.sat_count_over(3), Some(4));
    assert_eq!(x0.sat_count_over(5), Some(16));
    // Narrowing: exact while the support stays inside the universe…
    assert_eq!(x0.sat_count_over(1), Some(1));
    // …and refused (None) the moment it escapes.
    assert_eq!(mgr.var(2).sat_count_over(2), None);
    let mut b = OpBudget::unlimited();
    assert_eq!(
        mgr.var(2).try_sat_count_over(2, &mut b).expect("no budget"),
        None
    );
    // The empty universe still counts the constants.
    assert_eq!(mgr.constant(true).sat_count_over(0), Some(1));
    assert_eq!(mgr.constant(false).sat_count_over(0), Some(0));
}

#[test]
fn sat_count_over_agrees_across_backends() {
    let inst = random_cnf(6, 12, 99);
    let expect = inst.brute_force_count().expect("6 vars");
    // Build in a manager wider than the declared universe: the count
    // over the declared 6 variables must not see the extra width.
    for extra in [0usize, 3] {
        let n = inst.num_vars + extra;
        let mgr = BbddManager::with_vars(n);
        let plan = cnf::Schedule::Bucket.plan(&inst);
        let (f, _) = cnf::build_cnf(&mgr, &inst, &plan);
        assert_eq!(f.sat_count_over(inst.num_vars), Some(expect), "+{extra}");
        let mgr = RobddManager::with_vars(n);
        let (f, _) = cnf::build_cnf(&mgr, &inst, &plan);
        assert_eq!(f.sat_count_over(inst.num_vars), Some(expect), "+{extra}");
    }
}

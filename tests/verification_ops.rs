//! Property tests for the verification ops layer: random expression trees
//! over up to 12 variables are checked against brute-force truth-table
//! references on **both** managers (`bbdd::Bbdd` and `robdd::Robdd`), plus
//! a CEC positive/negative pair on real netlists.

use ddcore::NaryOp;
use logicnet::cec::{check_equivalence_bbdd, check_equivalence_robdd, CecVerdict};
use logicnet::{GateOp, Network};
use proptest::prelude::*;

/// A random Boolean expression over variables `0..n`.
#[derive(Debug, Clone)]
enum Expr {
    V(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, a: &[bool]) -> bool {
        match self {
            Expr::V(v) => a[*v],
            Expr::Not(e) => !e.eval(a),
            Expr::And(x, y) => x.eval(a) && y.eval(a),
            Expr::Or(x, y) => x.eval(a) || y.eval(a),
            Expr::Xor(x, y) => x.eval(a) ^ y.eval(a),
        }
    }

    fn build_bbdd(&self, mgr: &mut bbdd::Bbdd) -> bbdd::Edge {
        match self {
            Expr::V(v) => mgr.var(*v),
            Expr::Not(e) => !e.build_bbdd(mgr),
            Expr::And(x, y) => {
                let (a, b) = (x.build_bbdd(mgr), y.build_bbdd(mgr));
                mgr.and(a, b)
            }
            Expr::Or(x, y) => {
                let (a, b) = (x.build_bbdd(mgr), y.build_bbdd(mgr));
                mgr.or(a, b)
            }
            Expr::Xor(x, y) => {
                let (a, b) = (x.build_bbdd(mgr), y.build_bbdd(mgr));
                mgr.xor(a, b)
            }
        }
    }

    fn build_robdd(&self, mgr: &mut robdd::Robdd) -> robdd::Edge {
        match self {
            Expr::V(v) => mgr.var(*v),
            Expr::Not(e) => !e.build_robdd(mgr),
            Expr::And(x, y) => {
                let (a, b) = (x.build_robdd(mgr), y.build_robdd(mgr));
                mgr.and(a, b)
            }
            Expr::Or(x, y) => {
                let (a, b) = (x.build_robdd(mgr), y.build_robdd(mgr));
                mgr.or(a, b)
            }
            Expr::Xor(x, y) => {
                let (a, b) = (x.build_robdd(mgr), y.build_robdd(mgr));
                mgr.xor(a, b)
            }
        }
    }
}

fn expr_strategy(n: usize) -> BoxedStrategy<Expr> {
    let leaf = (0..n).prop_map(Expr::V).boxed();
    leaf.prop_recursive::<BoxedStrategy<Expr>, _>(5, 48, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
        .boxed()
    })
}

/// One random scenario: variable count, three expressions, a quantified
/// cube and a composition target variable.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    f: Expr,
    g: Expr,
    h: Expr,
    cube_mask: Vec<bool>,
    var: usize,
}

fn scenario_strategy() -> BoxedStrategy<Scenario> {
    (3usize..13)
        .prop_flat_map(|n| {
            (
                Just(n),
                expr_strategy(n),
                expr_strategy(n),
                expr_strategy(n),
                proptest::collection::vec(any::<bool>(), n),
                0..n,
            )
        })
        .prop_map(|(n, f, g, h, cube_mask, var)| Scenario {
            n,
            f,
            g,
            h,
            cube_mask,
            var,
        })
        .boxed()
}

/// Brute-force truth table of an expression: bit `m` ↦ value on the
/// assignment whose bit `i` is variable `i`.
fn table_of(e: &Expr, n: usize) -> Vec<bool> {
    let mut a = vec![false; n];
    (0..1usize << n)
        .map(|m| {
            for (i, slot) in a.iter_mut().enumerate() {
                *slot = (m >> i) & 1 == 1;
            }
            e.eval(&a)
        })
        .collect()
}

/// Quantify a truth table over `cube` with `or` (∃) or `and` (∀).
fn table_quantify(tt: &[bool], n: usize, cube: &[usize], exists: bool) -> Vec<bool> {
    let mut out = tt.to_vec();
    for &v in cube {
        let bit = 1usize << v;
        for m in 0..1usize << n {
            let pair = out[m ^ bit];
            out[m] = if exists {
                out[m] || pair
            } else {
                out[m] && pair
            };
        }
    }
    out
}

/// Simultaneous substitution on truth tables: variable `v` of `f` reads
/// `subs[v]`'s value (identity when `None`).
fn table_compose(f_tt: &[bool], n: usize, subs: &[Option<&[bool]>]) -> Vec<bool> {
    (0..1usize << n)
        .map(|m| {
            let mut m2 = 0usize;
            for v in 0..n {
                let bit = match subs.get(v).copied().flatten() {
                    Some(g_tt) => g_tt[m],
                    None => (m >> v) & 1 == 1,
                };
                m2 |= usize::from(bit) << v;
            }
            f_tt[m2]
        })
        .collect()
}

/// Unpack a manager truth table (packed u64 words) into per-row booleans.
fn unpack(words: &[u64], n: usize) -> Vec<bool> {
    (0..1usize << n)
        .map(|m| (words[m / 64] >> (m % 64)) & 1 == 1)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn verification_ops_match_truth_tables(sc in scenario_strategy()) {
        let Scenario { n, f, g, h, cube_mask, var } = sc;
        let cube: Vec<usize> = (0..n).filter(|&v| cube_mask[v]).collect();
        let f_tt = table_of(&f, n);
        let g_tt = table_of(&g, n);
        let h_tt = table_of(&h, n);

        let mut bb = bbdd::Bbdd::new(n);
        let fb = f.build_bbdd(&mut bb);
        let gb = g.build_bbdd(&mut bb);
        let hb = h.build_bbdd(&mut bb);
        let mut rb = robdd::Robdd::new(n);
        let fr = f.build_robdd(&mut rb);
        let gr = g.build_robdd(&mut rb);
        let hr = h.build_robdd(&mut rb);

        // Sanity: both managers agree with the reference function.
        prop_assert_eq!(&unpack(&bb.truth_table(fb), n), &f_tt);
        prop_assert_eq!(&unpack(&rb.truth_table(fr), n), &f_tt);

        // exists / forall over the cube.
        let ex_ref = table_quantify(&f_tt, n, &cube, true);
        let fa_ref = table_quantify(&f_tt, n, &cube, false);
        let e = bb.exists(fb, &cube);
        prop_assert_eq!(&unpack(&bb.truth_table(e), n), &ex_ref, "bbdd exists");
        let e = rb.exists(fr, &cube);
        prop_assert_eq!(&unpack(&rb.truth_table(e), n), &ex_ref, "robdd exists");
        let a = bb.forall(fb, &cube);
        prop_assert_eq!(&unpack(&bb.truth_table(a), n), &fa_ref, "bbdd forall");
        let a = rb.forall(fr, &cube);
        prop_assert_eq!(&unpack(&rb.truth_table(a), n), &fa_ref, "robdd forall");

        // Fused and-exists against the composed reference.
        let conj: Vec<bool> = f_tt.iter().zip(&g_tt).map(|(&x, &y)| x && y).collect();
        let ae_ref = table_quantify(&conj, n, &cube, true);
        let ae = bb.and_exists(fb, gb, &cube);
        prop_assert_eq!(&unpack(&bb.truth_table(ae), n), &ae_ref, "bbdd and_exists");
        let ae = rb.and_exists(fr, gr, &cube);
        prop_assert_eq!(&unpack(&rb.truth_table(ae), n), &ae_ref, "robdd and_exists");

        // Single-variable composition f[var := g].
        let mut subs_ref: Vec<Option<&[bool]>> = vec![None; n];
        subs_ref[var] = Some(&g_tt);
        let comp_ref = table_compose(&f_tt, n, &subs_ref);
        let c = bb.compose(fb, var, gb);
        prop_assert_eq!(&unpack(&bb.truth_table(c), n), &comp_ref, "bbdd compose");
        let c = rb.compose(fr, var, gr);
        prop_assert_eq!(&unpack(&rb.truth_table(c), n), &comp_ref, "robdd compose");

        // Simultaneous two-variable composition (var := g, w := h) where
        // w is a different variable — the cyclic case iterated compose
        // gets wrong.
        let w = (var + 1) % n;
        let mut subs_ref: Vec<Option<&[bool]>> = vec![None; n];
        subs_ref[var] = Some(&g_tt);
        subs_ref[w] = Some(&h_tt);
        let vc_ref = table_compose(&f_tt, n, &subs_ref);
        let mut subs_b: Vec<Option<bbdd::Edge>> = vec![None; n];
        subs_b[var] = Some(gb);
        subs_b[w] = Some(hb);
        let vc = bb.vector_compose(fb, &subs_b);
        prop_assert_eq!(&unpack(&bb.truth_table(vc), n), &vc_ref, "bbdd vector_compose");
        let mut subs_r: Vec<Option<robdd::Edge>> = vec![None; n];
        subs_r[var] = Some(gr);
        subs_r[w] = Some(hr);
        let vc = rb.vector_compose(fr, &subs_r);
        prop_assert_eq!(&unpack(&rb.truth_table(vc), n), &vc_ref, "robdd vector_compose");

        // satcount = popcount of the table.
        let pop = f_tt.iter().filter(|&&b| b).count() as u128;
        prop_assert_eq!(bb.sat_count(fb), pop, "bbdd sat_count");
        prop_assert_eq!(rb.sat_count(fr), pop, "robdd sat_count");

        // Generic n-ary apply: majority of the three functions.
        let maj_ref: Vec<bool> = (0..1usize << n)
            .map(|m| {
                let c = usize::from(f_tt[m]) + usize::from(g_tt[m]) + usize::from(h_tt[m]);
                c >= 2
            })
            .collect();
        let maj = bb.apply_n(NaryOp::majority3(), &[fb, gb, hb]);
        prop_assert_eq!(&unpack(&bb.truth_table(maj), n), &maj_ref, "bbdd apply_n");
        let maj = rb.apply_n(NaryOp::majority3(), &[fr, gr, hr]);
        prop_assert_eq!(&unpack(&rb.truth_table(maj), n), &maj_ref, "robdd apply_n");

        // Model enumeration agrees with the count; any_sat satisfies.
        if let Some(m) = bb.any_sat(fb) {
            prop_assert!(bb.eval(fb, &m), "bbdd any_sat model");
        } else {
            prop_assert_eq!(pop, 0);
        }
        if let Some(m) = rb.any_sat(fr) {
            prop_assert!(rb.eval(fr, &m), "robdd any_sat model");
        } else {
            prop_assert_eq!(pop, 0);
        }
        if pop <= 512 {
            prop_assert_eq!(bb.all_sat(fb, 1024).len() as u128, pop, "bbdd all_sat");
            prop_assert_eq!(rb.all_sat(fr, 1024).len() as u128, pop, "robdd all_sat");
        }

        // Both managers stay structurally sound under the new ops.
        prop_assert!(bb.validate().is_ok());
        prop_assert!(rb.validate().is_ok());
    }
}

/// CEC positive pair: two structurally different adders are proven
/// equivalent on both backends.
#[test]
fn cec_accepts_equivalent_adder_implementations() {
    let ripple = benchgen::datapath::adder(8);
    let cla = benchgen::datapath::adder_cla(8);
    assert_eq!(
        check_equivalence_bbdd(&ripple, &cla),
        CecVerdict::Equivalent
    );
    assert_eq!(
        check_equivalence_robdd(&ripple, &cla),
        CecVerdict::Equivalent
    );
}

/// CEC negative pair: a seeded single-gate mutation must be refuted with a
/// real counterexample.
#[test]
fn cec_refutes_seeded_mutation() {
    let good = benchgen::datapath::adder(6);
    // Rebuild the same adder but sabotage one carry: Maj → Or.
    let w = 6;
    let mut bad = Network::new("mutated_adder");
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in (0..w).rev() {
        a.push(bad.add_input(&format!("a{i}")));
        b.push(bad.add_input(&format!("b{i}")));
    }
    a.reverse();
    b.reverse();
    let mut carry = bad.add_gate(GateOp::Const0, &[]);
    for i in 0..w {
        let p = bad.add_gate(GateOp::Xor, &[a[i], b[i]]);
        let s = bad.add_gate(GateOp::Xor, &[p, carry]);
        bad.set_output(&format!("s{i}"), s);
        carry = if i == 3 {
            bad.add_gate(GateOp::Or, &[a[i], b[i]]) // seeded bug
        } else {
            bad.add_gate(GateOp::Maj, &[a[i], b[i], carry])
        };
    }
    bad.set_output("cout", carry);
    bad.check().unwrap();

    for verdict in [
        check_equivalence_bbdd(&good, &bad),
        check_equivalence_robdd(&good, &bad),
    ] {
        let CecVerdict::Inequivalent(cex) = verdict else {
            panic!("mutation must be refuted");
        };
        // The counterexample really distinguishes the two networks.
        let out_good = good.simulate(&cex.inputs);
        let out_bad = bad.simulate(&cex.inputs);
        assert_ne!(out_good, out_bad, "counterexample must distinguish");
        assert!(cex.distinguishing.unwrap() > 0);
    }
}

/// The BBDD-rewritten netlist of a datapath block is proven equivalent to
/// its source (the tentpole end-to-end flow as a test).
#[test]
fn rewrite_flow_is_self_verifying() {
    for net in [
        benchgen::datapath::adder(8),
        benchgen::datapath::equality(6),
    ] {
        let (rewritten, verdict) = synthkit::rewrite::rewrite_and_verify_bbdd(&net, true);
        assert!(verdict.is_equivalent(), "{}", net.name());
        assert_eq!(
            check_equivalence_robdd(&net, &rewritten),
            CecVerdict::Equivalent,
            "cross-check on the ROBDD backend"
        );
    }
}

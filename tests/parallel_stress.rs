//! Stress tests for the multi-core execution subsystem: random netlists
//! built through the parallel managers must produce roots **bit-identical**
//! across every tested thread count, agree with the sequential managers
//! function-for-function (and canonical-size-for-size), and the pooled CEC
//! driver must return exactly the sequential driver's verdicts.
//!
//! Run in `--release` by CI (the same assertions hold in debug, just
//! slower).

use bbdd_suite::*;

use bbdd::prelude::*;
use logicnet::build::build_network;
use logicnet::cec::{
    check_equivalence, check_equivalence_bbdd, check_equivalence_parallel_bbdd,
    check_equivalence_parallel_robdd, check_equivalence_robdd,
};
use logicnet::sim::SplitMix64;
use logicnet::{GateOp, Network, Signal};
use robdd::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A random combinational netlist: `gates` gates over `inputs` inputs,
/// topological by construction, with the last few wires as outputs.
fn random_network(seed: u64, inputs: usize, gates: usize) -> Network {
    let mut net = Network::new(&format!("rand_{seed:x}"));
    let mut sigs: Vec<Signal> = (0..inputs)
        .map(|i| net.add_input(&format!("i{i}")))
        .collect();
    let mut rng = SplitMix64::new(seed);
    for _ in 0..gates {
        let r = rng.next_u64();
        let pick = |r: u64| sigs[(r as usize) % sigs.len()];
        let (a, b, c) = (pick(r), pick(r >> 13), pick(r >> 26));
        let out = match r % 9 {
            0 => net.add_gate(GateOp::And, &[a, b]),
            1 => net.add_gate(GateOp::Or, &[a, b]),
            2 => net.add_gate(GateOp::Xor, &[a, b]),
            3 => net.add_gate(GateOp::Nand, &[a, b]),
            4 => net.add_gate(GateOp::Nor, &[a, b]),
            5 => net.add_gate(GateOp::Xnor, &[a, b]),
            6 => net.add_gate(GateOp::Not, &[a]),
            7 => net.add_gate(GateOp::Mux, &[a, b, c]),
            _ => net.add_gate(GateOp::Maj, &[a, b, c]),
        };
        sigs.push(out);
    }
    for (k, s) in sigs.iter().rev().take(4).enumerate() {
        net.set_output(&format!("o{k}"), *s);
    }
    net.check().expect("random network is structurally valid");
    net
}

fn forced_bbdd(threads: usize) -> bbdd::ParConfig {
    bbdd::ParConfig {
        threads,
        // Small but non-zero: netlist building exercises both the parallel
        // pipeline and the sequential fallback (the decision is
        // size-based, so it is identical for every thread count).
        cutoff: 48,
        split_depth: Some(3),
        cache_ways: 1 << 12,
        shards: 16,
    }
}

fn forced_robdd(threads: usize) -> robdd::ParConfig {
    robdd::ParConfig {
        threads,
        cutoff: 48,
        split_depth: Some(3),
        cache_ways: 1 << 12,
        shards: 16,
    }
}

/// Netlist construction through `ParBbdd`: bit-identical roots for every
/// thread count, semantics matching direct simulation and the sequential
/// manager, canonical sizes matching the sequential manager's.
#[test]
fn parbbdd_netlist_roots_bit_identical_across_thread_counts() {
    for seed in [3u64, 11, 42] {
        let net = random_network(seed, 12, 160);
        let seq = BbddManager::with_vars(net.num_inputs());
        let seq_roots = build_network(&seq, &net);
        let mut reference: Option<Vec<bbdd::Edge>> = None;
        for threads in THREAD_COUNTS {
            let par = ParBbddManager::new(bbdd::ParBbdd::with_config(
                net.num_inputs(),
                forced_bbdd(threads),
            ));
            let roots = build_network(&par, &net);
            let root_edges: Vec<bbdd::Edge> = roots.iter().map(bbdd::ParBbddFn::edge).collect();
            match &reference {
                None => reference = Some(root_edges.clone()),
                Some(expect) => assert_eq!(
                    &root_edges, expect,
                    "seed {seed}: thread count {threads} changed the roots"
                ),
            }
            par.backend().inner().validate().unwrap();
            assert!(
                par.backend().par_stats().ops_parallel > 0,
                "seed {seed}: the parallel pipeline must have run"
            );
            let mut rng = SplitMix64::new(seed ^ 0xA5A5);
            for _ in 0..200 {
                let v: Vec<bool> = (0..net.num_inputs())
                    .map(|_| rng.next_u64() & 1 == 1)
                    .collect();
                let sim = net.simulate(&v);
                for (o, expect) in sim.iter().enumerate() {
                    assert_eq!(roots[o].eval(&v), *expect, "seed {seed} output {o}");
                    assert_eq!(seq_roots[o].eval(&v), *expect, "seed {seed} output {o}");
                }
            }
            for (o, (p, s)) in roots.iter().zip(&seq_roots).enumerate() {
                assert_eq!(
                    p.node_count(),
                    s.node_count(),
                    "seed {seed} output {o}: canonical sizes differ"
                );
            }
        }
    }
}

/// The same stress for the ROBDD twin.
#[test]
fn parrobdd_netlist_roots_bit_identical_across_thread_counts() {
    for seed in [7u64, 19] {
        let net = random_network(seed, 12, 160);
        let seq = RobddManager::with_vars(net.num_inputs());
        let seq_roots = build_network(&seq, &net);
        let mut reference: Option<Vec<robdd::Edge>> = None;
        for threads in THREAD_COUNTS {
            let par = ParRobddManager::new(robdd::ParRobdd::with_config(
                net.num_inputs(),
                forced_robdd(threads),
            ));
            let roots = build_network(&par, &net);
            let root_edges: Vec<robdd::Edge> = roots.iter().map(robdd::ParRobddFn::edge).collect();
            match &reference {
                None => reference = Some(root_edges.clone()),
                Some(expect) => assert_eq!(
                    &root_edges, expect,
                    "seed {seed}: thread count {threads} changed the roots"
                ),
            }
            par.backend().inner().validate().unwrap();
            let mut rng = SplitMix64::new(seed ^ 0x5A5A);
            for _ in 0..200 {
                let v: Vec<bool> = (0..net.num_inputs())
                    .map(|_| rng.next_u64() & 1 == 1)
                    .collect();
                let sim = net.simulate(&v);
                for (o, expect) in sim.iter().enumerate() {
                    assert_eq!(roots[o].eval(&v), *expect, "seed {seed} output {o}");
                }
            }
            for (o, (p, s)) in roots.iter().zip(&seq_roots).enumerate() {
                assert_eq!(
                    p.node_count(),
                    s.node_count(),
                    "seed {seed} output {o}: canonical sizes differ"
                );
            }
        }
    }
}

/// Parallel quantification over netlist outputs: thread-count invariant
/// and equal to the sequential managers' results.
#[test]
fn parallel_quantification_matches_sequential_on_netlists() {
    let net = random_network(23, 10, 120);
    let vars: Vec<usize> = (0..net.num_inputs()).filter(|v| v % 2 == 0).collect();
    let seq = BbddManager::with_vars(net.num_inputs());
    let seq_roots = build_network(&seq, &net);
    let seq_ex: Vec<bbdd::BbddFn> = seq_roots.iter().map(|r| r.exists(&vars)).collect();
    let mut reference: Option<Vec<bbdd::Edge>> = None;
    for threads in THREAD_COUNTS {
        let par = ParBbddManager::new(bbdd::ParBbdd::with_config(
            net.num_inputs(),
            forced_bbdd(threads),
        ));
        let roots = build_network(&par, &net);
        let ex: Vec<bbdd::ParBbddFn> = roots.iter().map(|r| r.exists(&vars)).collect();
        let ex_edges: Vec<bbdd::Edge> = ex.iter().map(bbdd::ParBbddFn::edge).collect();
        match &reference {
            None => reference = Some(ex_edges.clone()),
            Some(expect) => assert_eq!(&ex_edges, expect, "threads {threads} changed ∃-roots"),
        }
        for (o, (p, s)) in ex.iter().zip(&seq_ex).enumerate() {
            assert_eq!(
                p.node_count(),
                s.node_count(),
                "output {o}: quantified canonical sizes differ"
            );
            assert_eq!(
                p.sat_count(),
                s.sat_count(),
                "output {o}: quantified functions differ"
            );
        }
    }
}

/// The pooled CEC driver agrees with the sequential driver — equivalent
/// pairs, and the refuted-output evidence on mutated pairs — for every
/// thread count and both backends.
#[test]
fn parallel_cec_verdicts_match_sequential() {
    let ripple = benchgen::datapath::adder(10);
    let cla = benchgen::datapath::adder_cla(10);
    let seq_bbdd = check_equivalence_bbdd(&ripple, &cla);
    let seq_robdd = check_equivalence_robdd(&ripple, &cla);
    assert!(seq_bbdd.is_equivalent() && seq_robdd.is_equivalent());

    // A seeded mutation: adder vs magnitude comparator-sized mismatch is
    // too blunt; flip one output wire instead.
    let mut mutated = benchgen::datapath::adder(10);
    let outs: Vec<(String, Signal)> = mutated
        .outputs()
        .iter()
        .map(|(n, s)| (n.clone(), *s))
        .collect();
    let (name, sig) = outs[3].clone();
    let flipped = mutated.add_gate(GateOp::Not, &[sig]);
    mutated.set_output(&name, flipped);
    let seq_neg = check_equivalence_bbdd(&ripple, &mutated);
    assert!(!seq_neg.is_equivalent());

    for threads in THREAD_COUNTS {
        assert_eq!(
            check_equivalence_parallel_bbdd(&ripple, &cla, threads),
            seq_bbdd,
            "threads {threads} (bbdd, positive)"
        );
        assert_eq!(
            check_equivalence_parallel_robdd(&ripple, &cla, threads),
            seq_robdd,
            "threads {threads} (robdd, positive)"
        );
        assert_eq!(
            check_equivalence_parallel_bbdd(&ripple, &mutated, threads),
            seq_neg,
            "threads {threads} (bbdd, negative): evidence must be deterministic"
        );
    }
}

/// The generic CEC driver running *on* a parallel manager (every miter and
/// quantification internally fork-join) proves the adder pair equivalent.
#[test]
fn parallel_manager_backs_the_generic_cec_driver() {
    let ripple = benchgen::datapath::adder(8);
    let cla = benchgen::datapath::adder_cla(8);
    let mgr = ParBbddManager::new(bbdd::ParBbdd::with_config(
        ripple.num_inputs(),
        forced_bbdd(4),
    ));
    assert!(check_equivalence(&mgr, &ripple, &cla).is_equivalent());
    let ps = mgr.backend().par_stats();
    assert!(ps.ops_parallel > 0 || ps.ops_sequential > 0);
    let mgr = ParRobddManager::new(robdd::ParRobdd::with_config(
        ripple.num_inputs(),
        forced_robdd(4),
    ));
    assert!(check_equivalence(&mgr, &ripple, &cla).is_equivalent());
}

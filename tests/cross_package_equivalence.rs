//! Cross-crate integration: both decision-diagram packages and the
//! bit-parallel simulator must agree on every benchmark generator, through
//! the full file-format pipeline.

use bbdd_suite::*;

use bbdd::prelude::*;
use logicnet::build::build_network;
use logicnet::sim::SplitMix64;
use logicnet::{blif, verilog, Network};
use robdd::prelude::*;

/// Compare BBDD, ROBDD and direct simulation on `vectors` random inputs.
fn agree_on_random_vectors(net: &Network, vectors: usize, seed: u64) {
    let bb = BbddManager::with_vars(net.num_inputs());
    let bb_roots = build_network(&bb, net);
    let bd = RobddManager::with_vars(net.num_inputs());
    let bd_roots = build_network(&bd, net);

    let mut rng = SplitMix64::new(seed);
    let n = net.num_inputs();
    for _ in 0..vectors {
        let v: Vec<bool> = (0..n).map(|_| rng.next_u64() & 1 == 1).collect();
        let sim = net.simulate(&v);
        for (o, expect) in sim.iter().enumerate() {
            assert_eq!(bb_roots[o].eval(&v), *expect, "BBDD output {o}");
            assert_eq!(bd_roots[o].eval(&v), *expect, "ROBDD output {o}");
        }
    }
}

#[test]
fn all_mcnc_benchmarks_agree_across_packages() {
    for bench in benchgen::mcnc::TABLE1 {
        let net = benchgen::mcnc::generate(bench.name).unwrap();
        agree_on_random_vectors(&net, 50, 0xC0FFEE ^ bench.inputs as u64);
    }
}

#[test]
fn datapaths_agree_across_packages() {
    for dp in benchgen::datapath::Datapath::table2() {
        // Moderate widths keep the test quick; the generators are
        // width-generic so correctness transfers.
        use benchgen::datapath::Datapath as D;
        let small = match dp {
            D::Adder { .. } => D::Adder { width: 8 },
            D::Equality { .. } => D::Equality { width: 8 },
            D::Magnitude { .. } => D::Magnitude { width: 8 },
            D::Barrel { .. } => D::Barrel { width: 8 },
        };
        let net = small.generate();
        agree_on_random_vectors(&net, 60, 0xDA7A);
        let com = small.commercial_implementation();
        agree_on_random_vectors(&com, 60, 0xDA7B);
    }
}

#[test]
fn file_format_pipeline_preserves_functions() {
    // generate → write Verilog → parse → write BLIF → parse → still the
    // same functions (checked through both DD packages).
    for name in ["C17", "z4ml", "9symml", "misex1", "decod", "parity"] {
        let net = benchgen::mcnc::generate(name).unwrap();
        let via_verilog = verilog::parse_verilog(&verilog::write_verilog(&net)).unwrap();
        let via_both = blif::parse_blif(&blif::write_blif(&via_verilog)).unwrap();
        assert_eq!(
            logicnet::sim::exhaustive_equivalence(&net, &via_both),
            logicnet::sim::Equivalence::Indistinguishable,
            "{name} corrupted by the format pipeline"
        );
    }
}

#[test]
fn canonicity_is_order_independent_across_rebuilds() {
    // Build the same functions twice with different construction orders in
    // one manager: canonical edges must coincide; then sift and re-check
    // semantics against a fresh simulation.
    let net = benchgen::mcnc::generate("z4ml").unwrap();
    let mgr = BbddManager::with_vars(net.num_inputs());
    let roots1 = build_network(&mgr, &net);
    let roots2 = build_network(&mgr, &net);
    assert_eq!(roots1, roots2, "canonical rebuild");
    mgr.reorder(); // the output handles are the registry's roots
    agree_after_sift(&net, &roots1);
}

fn agree_after_sift(net: &Network, roots: &[bbdd::BbddFn]) {
    let n = net.num_inputs();
    for m in 0..(1u32 << n.min(12)) {
        let v: Vec<bool> = (0..n).map(|i| (m >> (i % 32)) & 1 == 1).collect();
        let sim = net.simulate(&v);
        for (o, expect) in sim.iter().enumerate() {
            assert_eq!(roots[o].eval(&v), *expect);
        }
    }
}

#[test]
fn sift_preserves_all_benchmark_functions() {
    for name in [
        "C17", "misex1", "z4ml", "decod", "9symml", "parity", "cordic",
    ] {
        let net = benchgen::mcnc::generate(name).unwrap();
        let mgr = BbddManager::with_vars(net.num_inputs());
        let roots = build_network(&mgr, &net);
        let before: Vec<u128> = roots.iter().map(|r| r.sat_count()).collect();
        mgr.reorder();
        mgr.backend().validate().unwrap();
        let after: Vec<u128> = roots.iter().map(|r| r.sat_count()).collect();
        assert_eq!(before, after, "{name}: sat counts changed under sifting");
        agree_on_sample(&net, &roots, 0x51F7);
    }
}

fn agree_on_sample(net: &Network, roots: &[bbdd::BbddFn], seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let n = net.num_inputs();
    for _ in 0..40 {
        let v: Vec<bool> = (0..n).map(|_| rng.next_u64() & 1 == 1).collect();
        let sim = net.simulate(&v);
        for (o, expect) in sim.iter().enumerate() {
            assert_eq!(roots[o].eval(&v), *expect);
        }
    }
}

#[test]
fn sat_counts_match_between_packages() {
    for name in ["C17", "misex1", "z4ml", "9symml", "decod", "parity"] {
        let net = benchgen::mcnc::generate(name).unwrap();
        let bb = BbddManager::with_vars(net.num_inputs());
        let bb_roots = build_network(&bb, &net);
        let bd = RobddManager::with_vars(net.num_inputs());
        let bd_roots = build_network(&bd, &net);
        for (o, (fb, fd)) in bb_roots.iter().zip(&bd_roots).enumerate() {
            assert_eq!(
                fb.sat_count(),
                fd.sat_count(),
                "{name} output {o}: packages disagree on model count"
            );
        }
    }
}

//! Property tests of the owned-handle + root-registry contract (PR 4's
//! tentpole): random op/clone/drop interleavings with *forced automatic
//! GC* must preserve semantics against brute-force truth tables, the
//! live-node accounting must match what the registry can reach, and once
//! every handle drops the managers must collect down to the sink-only
//! baseline (the leak check) — on both sequential managers and both
//! parallel front-ends at 1 and 4 threads.

use bbdd_suite::*;

use proptest::prelude::*;

const NV: usize = 5;

/// The manager surface the interleaving harness drives, implemented for
/// all four managers so one interpreter checks the whole family.
trait HarnessMgr {
    type Fun: Clone;
    fn var_fn(&mut self, v: usize) -> Self::Fun;
    fn const_fn(&mut self, b: bool) -> Self::Fun;
    fn not_fn(&self, f: &Self::Fun) -> Self::Fun;
    fn apply_fn(&mut self, op: u8, a: &Self::Fun, b: &Self::Fun) -> Self::Fun;
    fn ite_fn(&mut self, s: &Self::Fun, a: &Self::Fun, b: &Self::Fun) -> Self::Fun;
    fn exists_fn(&mut self, f: &Self::Fun, vars: &[usize]) -> Self::Fun;
    fn eval(&self, f: &Self::Fun, v: &[bool]) -> bool;
    fn gc(&mut self) -> usize;
    fn live_nodes(&self) -> usize;
    fn external_roots(&self) -> usize;
    fn shared_count(&self, fs: &[Self::Fun]) -> usize;
    fn validate(&self) -> Result<(), String>;
    fn set_gc_threshold(&mut self, t: usize);
    fn gc_runs(&self) -> u64;
}

impl HarnessMgr for bbdd::Bbdd {
    type Fun = bbdd::BbddFn;
    fn var_fn(&mut self, v: usize) -> Self::Fun {
        bbdd::Bbdd::var_fn(self, v)
    }
    fn const_fn(&mut self, b: bool) -> Self::Fun {
        bbdd::Bbdd::const_fn(self, b)
    }
    fn not_fn(&self, f: &Self::Fun) -> Self::Fun {
        bbdd::Bbdd::not_fn(self, f)
    }
    fn apply_fn(&mut self, op: u8, a: &Self::Fun, b: &Self::Fun) -> Self::Fun {
        bbdd::Bbdd::apply_fn(self, bbdd::BoolOp::from_table(op), a, b)
    }
    fn ite_fn(&mut self, s: &Self::Fun, a: &Self::Fun, b: &Self::Fun) -> Self::Fun {
        bbdd::Bbdd::ite_fn(self, s, a, b)
    }
    fn exists_fn(&mut self, f: &Self::Fun, vars: &[usize]) -> Self::Fun {
        bbdd::Bbdd::exists_fn(self, f, vars)
    }
    fn eval(&self, f: &Self::Fun, v: &[bool]) -> bool {
        bbdd::Bbdd::eval(self, f.edge(), v)
    }
    fn gc(&mut self) -> usize {
        bbdd::Bbdd::gc(self)
    }
    fn live_nodes(&self) -> usize {
        bbdd::Bbdd::live_nodes(self)
    }
    fn external_roots(&self) -> usize {
        bbdd::Bbdd::external_roots(self)
    }
    fn shared_count(&self, fs: &[Self::Fun]) -> usize {
        self.shared_node_count_fns(fs)
    }
    fn validate(&self) -> Result<(), String> {
        bbdd::Bbdd::validate(self)
    }
    fn set_gc_threshold(&mut self, t: usize) {
        bbdd::Bbdd::set_gc_threshold(self, t);
    }
    fn gc_runs(&self) -> u64 {
        self.stats().gc_runs
    }
}

impl HarnessMgr for robdd::Robdd {
    type Fun = robdd::RobddFn;
    fn var_fn(&mut self, v: usize) -> Self::Fun {
        robdd::Robdd::var_fn(self, v)
    }
    fn const_fn(&mut self, b: bool) -> Self::Fun {
        robdd::Robdd::const_fn(self, b)
    }
    fn not_fn(&self, f: &Self::Fun) -> Self::Fun {
        robdd::Robdd::not_fn(self, f)
    }
    fn apply_fn(&mut self, op: u8, a: &Self::Fun, b: &Self::Fun) -> Self::Fun {
        robdd::Robdd::apply_fn(self, robdd::BoolOp::from_table(op), a, b)
    }
    fn ite_fn(&mut self, s: &Self::Fun, a: &Self::Fun, b: &Self::Fun) -> Self::Fun {
        robdd::Robdd::ite_fn(self, s, a, b)
    }
    fn exists_fn(&mut self, f: &Self::Fun, vars: &[usize]) -> Self::Fun {
        robdd::Robdd::exists_fn(self, f, vars)
    }
    fn eval(&self, f: &Self::Fun, v: &[bool]) -> bool {
        robdd::Robdd::eval(self, f.edge(), v)
    }
    fn gc(&mut self) -> usize {
        robdd::Robdd::gc(self)
    }
    fn live_nodes(&self) -> usize {
        robdd::Robdd::live_nodes(self)
    }
    fn external_roots(&self) -> usize {
        robdd::Robdd::external_roots(self)
    }
    fn shared_count(&self, fs: &[Self::Fun]) -> usize {
        self.shared_node_count_fns(fs)
    }
    fn validate(&self) -> Result<(), String> {
        robdd::Robdd::validate(self)
    }
    fn set_gc_threshold(&mut self, t: usize) {
        robdd::Robdd::set_gc_threshold(self, t);
    }
    fn gc_runs(&self) -> u64 {
        self.stats().gc_runs
    }
}

impl HarnessMgr for bbdd::ParBbdd {
    type Fun = bbdd::BbddFn;
    fn var_fn(&mut self, v: usize) -> Self::Fun {
        bbdd::ParBbdd::var_fn(self, v)
    }
    fn const_fn(&mut self, b: bool) -> Self::Fun {
        bbdd::ParBbdd::const_fn(self, b)
    }
    fn not_fn(&self, f: &Self::Fun) -> Self::Fun {
        bbdd::ParBbdd::not_fn(self, f)
    }
    fn apply_fn(&mut self, op: u8, a: &Self::Fun, b: &Self::Fun) -> Self::Fun {
        bbdd::ParBbdd::apply_fn(self, bbdd::BoolOp::from_table(op), a, b)
    }
    fn ite_fn(&mut self, s: &Self::Fun, a: &Self::Fun, b: &Self::Fun) -> Self::Fun {
        bbdd::ParBbdd::ite_fn(self, s, a, b)
    }
    fn exists_fn(&mut self, f: &Self::Fun, vars: &[usize]) -> Self::Fun {
        bbdd::ParBbdd::exists_fn(self, f, vars)
    }
    fn eval(&self, f: &Self::Fun, v: &[bool]) -> bool {
        bbdd::ParBbdd::eval(self, f.edge(), v)
    }
    fn gc(&mut self) -> usize {
        self.collect()
    }
    fn live_nodes(&self) -> usize {
        bbdd::ParBbdd::live_nodes(self)
    }
    fn external_roots(&self) -> usize {
        bbdd::ParBbdd::external_roots(self)
    }
    fn shared_count(&self, fs: &[Self::Fun]) -> usize {
        self.inner().shared_node_count_fns(fs)
    }
    fn validate(&self) -> Result<(), String> {
        self.inner().validate()
    }
    fn set_gc_threshold(&mut self, t: usize) {
        bbdd::ParBbdd::set_gc_threshold(self, t);
    }
    fn gc_runs(&self) -> u64 {
        self.stats().gc_runs
    }
}

impl HarnessMgr for robdd::ParRobdd {
    type Fun = robdd::RobddFn;
    fn var_fn(&mut self, v: usize) -> Self::Fun {
        robdd::ParRobdd::var_fn(self, v)
    }
    fn const_fn(&mut self, b: bool) -> Self::Fun {
        robdd::ParRobdd::const_fn(self, b)
    }
    fn not_fn(&self, f: &Self::Fun) -> Self::Fun {
        robdd::ParRobdd::not_fn(self, f)
    }
    fn apply_fn(&mut self, op: u8, a: &Self::Fun, b: &Self::Fun) -> Self::Fun {
        robdd::ParRobdd::apply_fn(self, robdd::BoolOp::from_table(op), a, b)
    }
    fn ite_fn(&mut self, s: &Self::Fun, a: &Self::Fun, b: &Self::Fun) -> Self::Fun {
        robdd::ParRobdd::ite_fn(self, s, a, b)
    }
    fn exists_fn(&mut self, f: &Self::Fun, vars: &[usize]) -> Self::Fun {
        robdd::ParRobdd::exists_fn(self, f, vars)
    }
    fn eval(&self, f: &Self::Fun, v: &[bool]) -> bool {
        robdd::ParRobdd::eval(self, f.edge(), v)
    }
    fn gc(&mut self) -> usize {
        self.collect()
    }
    fn live_nodes(&self) -> usize {
        robdd::ParRobdd::live_nodes(self)
    }
    fn external_roots(&self) -> usize {
        robdd::ParRobdd::external_roots(self)
    }
    fn shared_count(&self, fs: &[Self::Fun]) -> usize {
        self.inner().shared_node_count_fns(fs)
    }
    fn validate(&self) -> Result<(), String> {
        self.inner().validate()
    }
    fn set_gc_threshold(&mut self, t: usize) {
        robdd::ParRobdd::set_gc_threshold(self, t);
    }
    fn gc_runs(&self) -> u64 {
        self.stats().gc_runs
    }
}

// ── Truth-table shadow model (32-bit tables over 5 variables) ────────────

fn tt_var(v: usize) -> u32 {
    let mut t = 0u32;
    for m in 0..32u32 {
        if (m >> v) & 1 == 1 {
            t |= 1 << m;
        }
    }
    t
}

fn tt_exists(t: u32, vars: &[usize]) -> u32 {
    let mut t = t;
    for &v in vars {
        let mut r = 0u32;
        for m in 0..32u32 {
            let hi = m | (1 << v);
            let lo = m & !(1 << v);
            if (t >> hi) & 1 == 1 || (t >> lo) & 1 == 1 {
                r |= 1 << m;
            }
        }
        t = r;
    }
    t
}

/// One random script step: `(kind, a, b, c)` interpreted modulo the
/// current slot count.
type Step = (u8, u8, u8, u8);

fn vars_of_mask(mask: u8) -> Vec<usize> {
    (0..NV).filter(|v| (mask >> v) & 1 == 1).collect()
}

/// Run a script on one manager, checking semantics and accounting.
fn run_script<M: HarnessMgr>(mgr: &mut M, steps: &[Step]) {
    // Force the automatic GC: latch at 4 live nodes, collect at every
    // handle boundary past that.
    mgr.set_gc_threshold(4);
    // Live (handle, shadow-truth-table) pairs.
    let mut slots: Vec<(M::Fun, u32)> = Vec::new();
    for &(kind, a, b, c) in steps {
        let pick = |x: u8, len: usize| x as usize % len;
        match kind % 9 {
            0 => {
                let v = a as usize % NV;
                slots.push((mgr.var_fn(v), tt_var(v)));
            }
            1 => {
                let bit = a & 1 == 1;
                slots.push((mgr.const_fn(bit), if bit { !0 } else { 0 }));
            }
            2 if !slots.is_empty() => {
                let (i, j) = (pick(a, slots.len()), pick(b, slots.len()));
                let op = c % 16;
                let f = mgr.apply_fn(op, &slots[i].0, &slots[j].0);
                let mut t = 0u32;
                for m in 0..32u32 {
                    let x = (slots[i].1 >> m) & 1 == 1;
                    let y = (slots[j].1 >> m) & 1 == 1;
                    if bbdd::BoolOp::from_table(op).eval(x, y) {
                        t |= 1 << m;
                    }
                }
                slots.push((f, t));
            }
            3 if !slots.is_empty() => {
                let (i, j, k) = (
                    pick(a, slots.len()),
                    pick(b, slots.len()),
                    pick(c, slots.len()),
                );
                let f = mgr.ite_fn(&slots[i].0, &slots[j].0, &slots[k].0);
                let t = (slots[i].1 & slots[j].1) | (!slots[i].1 & slots[k].1);
                slots.push((f, t));
            }
            4 if !slots.is_empty() => {
                let i = pick(a, slots.len());
                let f = mgr.not_fn(&slots[i].0);
                let t = !slots[i].1;
                slots.push((f, t));
            }
            5 if !slots.is_empty() => {
                let i = pick(a, slots.len());
                let vs = vars_of_mask(b);
                let f = mgr.exists_fn(&slots[i].0, &vs);
                let t = tt_exists(slots[i].1, &vs);
                slots.push((f, t));
            }
            6 if !slots.is_empty() => {
                // Handle clone: same function, same slot (refcount bump).
                let i = pick(a, slots.len());
                let dup = slots[i].clone();
                slots.push(dup);
            }
            7 if !slots.is_empty() => {
                // Handle drop, mid-script.
                let i = pick(a, slots.len());
                slots.swap_remove(i);
            }
            8 => {
                mgr.gc();
            }
            _ => {}
        }
    }
    // Deterministic tail: the 5-variable parity chain always crosses the
    // threshold, so the auto-GC latch must have fired at least once.
    let mut acc = mgr.const_fn(false);
    let mut acc_tt = 0u32;
    for v in 0..NV {
        let lit = mgr.var_fn(v);
        acc = mgr.apply_fn(bbdd::BoolOp::XOR.table(), &acc, &lit);
        acc_tt ^= tt_var(v);
    }
    slots.push((acc, acc_tt));
    prop_assert!(mgr.gc_runs() > 0, "forced auto-GC never fired");

    // Semantics: every surviving handle still denotes its shadow table.
    mgr.validate().unwrap();
    for (idx, (f, tt)) in slots.iter().enumerate() {
        for m in 0..32u32 {
            let v: Vec<bool> = (0..NV).map(|i| (m >> i) & 1 == 1).collect();
            prop_assert_eq!(
                mgr.eval(f, &v),
                (tt >> m) & 1 == 1,
                "slot {} assignment {}",
                idx,
                m
            );
        }
    }
    // Accounting: after a collection, the live set is exactly what the
    // registered handles reach.
    mgr.gc();
    let handles: Vec<M::Fun> = slots.iter().map(|(f, _)| f.clone()).collect();
    prop_assert_eq!(
        mgr.shared_count(&handles),
        mgr.live_nodes(),
        "live nodes != nodes reachable from the registry"
    );
    // Leak check: all handles dropped → sink-only baseline, empty registry.
    drop(handles);
    drop(slots);
    mgr.gc();
    prop_assert_eq!(mgr.external_roots(), 0, "registry must drain");
    prop_assert_eq!(mgr.live_nodes(), 0, "sink-only baseline after drops");
    mgr.validate().unwrap();
}

fn par_bbdd(threads: usize) -> bbdd::ParBbdd {
    bbdd::ParBbdd::with_config(
        NV,
        bbdd::ParConfig {
            threads,
            cutoff: 0, // force the parallel pipeline on every operand size
            split_depth: Some(2),
            cache_ways: 1 << 10,
            shards: 8,
        },
    )
}

fn par_robdd(threads: usize) -> robdd::ParRobdd {
    robdd::ParRobdd::with_config(
        NV,
        robdd::ParConfig {
            threads,
            cutoff: 0,
            split_depth: Some(2),
            cache_ways: 1 << 10,
            shards: 8,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bbdd_interleaved_handles_and_auto_gc(
        steps in proptest::collection::vec(
            (0u8..9, any::<u8>(), any::<u8>(), any::<u8>()), 1..48)
    ) {
        let mut mgr = bbdd::Bbdd::new(NV);
        run_script(&mut mgr, &steps);
    }

    #[test]
    fn robdd_interleaved_handles_and_auto_gc(
        steps in proptest::collection::vec(
            (0u8..9, any::<u8>(), any::<u8>(), any::<u8>()), 1..48)
    ) {
        let mut mgr = robdd::Robdd::new(NV);
        run_script(&mut mgr, &steps);
    }

    #[test]
    fn par_bbdd_interleaved_handles_and_auto_gc(
        steps in proptest::collection::vec(
            (0u8..9, any::<u8>(), any::<u8>(), any::<u8>()), 1..32)
    ) {
        for threads in [1usize, 4] {
            let mut mgr = par_bbdd(threads);
            run_script(&mut mgr, &steps);
        }
    }

    #[test]
    fn par_robdd_interleaved_handles_and_auto_gc(
        steps in proptest::collection::vec(
            (0u8..9, any::<u8>(), any::<u8>(), any::<u8>()), 1..32)
    ) {
        for threads in [1usize, 4] {
            let mut mgr = par_robdd(threads);
            run_script(&mut mgr, &steps);
        }
    }
}

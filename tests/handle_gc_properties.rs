//! Property tests of the owned-handle + automatic-GC machinery through
//! the unified `ddcore::api` trait layer, on all four managers.
//!
//! A random script interleaves function construction, handle clones and
//! drops, explicit collections, a forced automatic-GC latch
//! (`gc_threshold = 4`) and **randomly-triggered scheduled reorders**
//! (random `DvoPolicy` installs plus collection gates and explicit
//! reorders that fire them), while every live handle carries a 32-entry
//! shadow truth table. Invariants, per manager:
//!
//! * every surviving handle still denotes its shadow table — re-checked
//!   immediately after every reorder opportunity, not just at the end;
//! * the variable order stays a permutation through every reorder;
//! * after a collection, `live_nodes` equals exactly the nodes reachable
//!   from the registered handles;
//! * once every handle drops, the manager returns to the sink-only
//!   baseline with an empty registry (the leak check).
//!
//! Before the trait family existed, this file carried a hand-written shim
//! trait re-declaring the handle ops for each manager; the generic script
//! now runs on `M: FunctionManager` directly.

use bbdd::prelude::*;
use ddcore::dvo::{DvoPolicy, DvoStrategy, ReorderSchedule};
use proptest::prelude::*;
use robdd::prelude::*;

const NV: usize = 5;

/// The per-backend escape hatches the generic script still needs:
/// structural validation and the GC-run counter (diagnostics that are
/// deliberately not part of the public trait surface).
trait Diagnostics: FunctionManager {
    fn validate_all(&self) -> Result<(), String>;
    fn gc_runs(&self) -> u64;
}

impl Diagnostics for BbddManager {
    fn validate_all(&self) -> Result<(), String> {
        self.backend().validate()
    }
    fn gc_runs(&self) -> u64 {
        self.backend().stats().gc_runs
    }
}

impl Diagnostics for RobddManager {
    fn validate_all(&self) -> Result<(), String> {
        self.backend().validate()
    }
    fn gc_runs(&self) -> u64 {
        self.backend().stats().gc_runs
    }
}

impl Diagnostics for ParBbddManager {
    fn validate_all(&self) -> Result<(), String> {
        self.backend().inner().validate()
    }
    fn gc_runs(&self) -> u64 {
        self.backend().stats().gc_runs
    }
}

impl Diagnostics for ParRobddManager {
    fn validate_all(&self) -> Result<(), String> {
        self.backend().inner().validate()
    }
    fn gc_runs(&self) -> u64 {
        self.backend().stats().gc_runs
    }
}

// ── Truth-table shadow model (32-bit tables over 5 variables) ────────────

fn tt_var(v: usize) -> u32 {
    let mut t = 0u32;
    for m in 0..32u32 {
        if (m >> v) & 1 == 1 {
            t |= 1 << m;
        }
    }
    t
}

fn tt_exists(t: u32, vars: &[usize]) -> u32 {
    let mut t = t;
    for &v in vars {
        let mut r = 0u32;
        for m in 0..32u32 {
            let hi = m | (1 << v);
            let lo = m & !(1 << v);
            if (t >> hi) & 1 == 1 || (t >> lo) & 1 == 1 {
                r |= 1 << m;
            }
        }
        t = r;
    }
    t
}

/// One random script step: `(kind, a, b, c)` interpreted modulo the
/// current slot count.
type Step = (u8, u8, u8, u8);

fn vars_of_mask(mask: u8) -> Vec<usize> {
    (0..NV).filter(|v| (mask >> v) & 1 == 1).collect()
}

/// Decode a random reorder policy from two script bytes.
fn policy_of(a: u8, b: u8) -> DvoPolicy {
    let strategy = match a % 4 {
        0 => DvoStrategy::Full,
        1 => DvoStrategy::Window(1),
        2 => DvoStrategy::Window(2),
        _ => DvoStrategy::Pair,
    };
    let schedule = match b % 4 {
        0 => ReorderSchedule::Never,
        1 => ReorderSchedule::NodeThreshold(8),
        2 => ReorderSchedule::GrowthFactor(1.5),
        _ => ReorderSchedule::EveryCreations(32),
    };
    DvoPolicy { strategy, schedule }
}

/// The post-reorder invariants: permutation order, exact truth tables on
/// every surviving handle, balanced registry (PR 4 leak check: the live
/// set is exactly what the registry reaches).
fn check_after_reorder<M: Diagnostics>(mgr: &M, slots: &[(M::Function, u32)]) {
    let mut order = mgr.variable_order();
    order.sort_unstable();
    prop_assert_eq!(order, (0..NV).collect::<Vec<_>>(), "order permutation");
    mgr.validate_all().unwrap();
    for (idx, (f, tt)) in slots.iter().enumerate() {
        for m in 0..32u32 {
            let v: Vec<bool> = (0..NV).map(|i| (m >> i) & 1 == 1).collect();
            prop_assert_eq!(
                f.eval(&v),
                (tt >> m) & 1 == 1,
                "post-reorder slot {} assignment {}",
                idx,
                m
            );
        }
    }
    let handles: Vec<M::Function> = slots.iter().map(|(f, _)| f.clone()).collect();
    mgr.gc();
    prop_assert_eq!(
        mgr.shared_node_count(&handles),
        mgr.live_nodes(),
        "post-reorder live nodes != nodes reachable from the registry"
    );
}

/// Run a script on one manager, checking semantics and accounting.
fn run_script<M: Diagnostics>(mgr: &M, steps: &[Step]) {
    // Force the automatic GC: latch at 4 live nodes, collect at every
    // operation boundary past that.
    mgr.set_gc_threshold(4);
    // Live (handle, shadow-truth-table) pairs.
    let mut slots: Vec<(M::Function, u32)> = Vec::new();
    for &(kind, a, b, c) in steps {
        let pick = |x: u8, len: usize| x as usize % len;
        match kind % 12 {
            0 => {
                let v = a as usize % NV;
                slots.push((mgr.var(v), tt_var(v)));
            }
            1 => {
                let bit = a & 1 == 1;
                slots.push((mgr.constant(bit), if bit { !0 } else { 0 }));
            }
            2 if !slots.is_empty() => {
                let (i, j) = (pick(a, slots.len()), pick(b, slots.len()));
                let op = BoolOp::from_table(c % 16);
                let f = slots[i].0.apply(op, &slots[j].0);
                let mut t = 0u32;
                for m in 0..32u32 {
                    let x = (slots[i].1 >> m) & 1 == 1;
                    let y = (slots[j].1 >> m) & 1 == 1;
                    if op.eval(x, y) {
                        t |= 1 << m;
                    }
                }
                slots.push((f, t));
            }
            3 if !slots.is_empty() => {
                let (i, j, k) = (
                    pick(a, slots.len()),
                    pick(b, slots.len()),
                    pick(c, slots.len()),
                );
                let f = slots[i].0.ite(&slots[j].0, &slots[k].0);
                let t = (slots[i].1 & slots[j].1) | (!slots[i].1 & slots[k].1);
                slots.push((f, t));
            }
            4 if !slots.is_empty() => {
                let i = pick(a, slots.len());
                let f = slots[i].0.not();
                let t = !slots[i].1;
                slots.push((f, t));
            }
            5 if !slots.is_empty() => {
                let i = pick(a, slots.len());
                let vs = vars_of_mask(b);
                let f = slots[i].0.exists(&vs);
                let t = tt_exists(slots[i].1, &vs);
                slots.push((f, t));
            }
            6 if !slots.is_empty() => {
                // Handle clone: same function, same slot (refcount bump).
                let i = pick(a, slots.len());
                let dup = slots[i].clone();
                slots.push(dup);
            }
            7 if !slots.is_empty() => {
                // Handle drop, mid-script.
                let i = pick(a, slots.len());
                slots.swap_remove(i);
            }
            8 => {
                mgr.gc();
            }
            9 => {
                // Install (or, on repeat, replace) a random reorder policy:
                // subsequent op boundaries and collect() gates may now fire
                // scheduled sifts at random points of the script.
                mgr.set_reorder_policy(Some(policy_of(a, b)));
            }
            10 => {
                // The generic drivers' collection gate — where a due
                // scheduled reorder fires.
                mgr.collect();
                check_after_reorder(mgr, &slots);
            }
            11 if mgr.reorder().is_some() => {
                check_after_reorder(mgr, &slots);
            }
            _ => {}
        }
    }
    // Deterministic tail: the 5-variable parity chain always crosses the
    // threshold, so the auto-GC latch must have fired at least once.
    let mut acc = mgr.constant(false);
    let mut acc_tt = 0u32;
    for v in 0..NV {
        acc = acc.xor(&mgr.var(v));
        acc_tt ^= tt_var(v);
    }
    slots.push((acc, acc_tt));
    prop_assert!(mgr.gc_runs() > 0, "forced auto-GC never fired");

    // Semantics: every surviving handle still denotes its shadow table.
    mgr.validate_all().unwrap();
    for (idx, (f, tt)) in slots.iter().enumerate() {
        for m in 0..32u32 {
            let v: Vec<bool> = (0..NV).map(|i| (m >> i) & 1 == 1).collect();
            prop_assert_eq!(
                f.eval(&v),
                (tt >> m) & 1 == 1,
                "slot {} assignment {}",
                idx,
                m
            );
        }
    }
    // Accounting: after a collection, the live set is exactly what the
    // registered handles reach.
    mgr.gc();
    let handles: Vec<M::Function> = slots.iter().map(|(f, _)| f.clone()).collect();
    prop_assert_eq!(
        mgr.shared_node_count(&handles),
        mgr.live_nodes(),
        "live nodes != nodes reachable from the registry"
    );
    // Leak check: all handles dropped → sink-only baseline, empty registry.
    drop(handles);
    drop(slots);
    mgr.gc();
    prop_assert_eq!(mgr.external_roots(), 0, "registry must drain");
    prop_assert_eq!(mgr.live_nodes(), 0, "sink-only baseline after drops");
    mgr.validate_all().unwrap();
}

fn par_bbdd(threads: usize) -> ParBbddManager {
    ParBbddManager::new(ParBbdd::with_config(
        NV,
        bbdd::ParConfig {
            threads,
            cutoff: 0, // force the parallel pipeline on every operand size
            split_depth: Some(2),
            cache_ways: 1 << 10,
            shards: 8,
        },
    ))
}

fn par_robdd(threads: usize) -> ParRobddManager {
    ParRobddManager::new(ParRobdd::with_config(
        NV,
        robdd::ParConfig {
            threads,
            cutoff: 0,
            split_depth: Some(2),
            cache_ways: 1 << 10,
            shards: 8,
        },
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bbdd_interleaved_handles_and_auto_gc(
        steps in proptest::collection::vec(
            (0u8..12, any::<u8>(), any::<u8>(), any::<u8>()), 1..48)
    ) {
        run_script(&BbddManager::with_vars(NV), &steps);
    }

    #[test]
    fn robdd_interleaved_handles_and_auto_gc(
        steps in proptest::collection::vec(
            (0u8..12, any::<u8>(), any::<u8>(), any::<u8>()), 1..48)
    ) {
        run_script(&RobddManager::with_vars(NV), &steps);
    }

    #[test]
    fn par_bbdd_interleaved_handles_and_auto_gc(
        steps in proptest::collection::vec(
            (0u8..12, any::<u8>(), any::<u8>(), any::<u8>()), 1..32)
    ) {
        for threads in [1usize, 4] {
            run_script(&par_bbdd(threads), &steps);
        }
    }

    #[test]
    fn par_robdd_interleaved_handles_and_auto_gc(
        steps in proptest::collection::vec(
            (0u8..12, any::<u8>(), any::<u8>(), any::<u8>()), 1..32)
    ) {
        for threads in [1usize, 4] {
            run_script(&par_robdd(threads), &steps);
        }
    }
}

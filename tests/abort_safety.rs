//! The abort-safety proof harness for `ddcore::govern`: after **any**
//! abort mid-recursion, the manager must remain fully usable.
//!
//! Three layers of evidence, each on all four managers (parallel pair at
//! threads 1 and 4):
//!
//! 1. **Exhaustive fault-injection sweep** — a deterministic workload
//!    exercising apply/ite/exists/forall/and_exists/compose/sat_count
//!    through the fallible trait ops is first metered (total checkpoint
//!    count N), then re-run N times with [`OpBudget::inject_cancel_at`]
//!    forcing an abort at exactly the K-th checkpoint, for every K in
//!    1..=N. After each abort: every surviving handle still denotes its
//!    shadow truth table, the manager validates structurally, infallible
//!    ops still work, and once all handles drop the GC returns to the
//!    sink-only baseline with an empty registry (the PR 4 leak check).
//! 2. **Randomized interleaving** — proptest scripts interleave random
//!    ops with random injection points; the same invariants hold.
//! 3. **Cancellation latency** — a token raised mid-request aborts within
//!    one poll stride of further checkpoints, the documented bound.
//!
//! Bounded sifting gets its own sweep: an abort at any checkpoint of
//! `try_reorder` must leave a consistent variable order and a diagram
//! still denoting the same functions.

use bbdd::prelude::*;
use ddcore::govern::{CancelToken, OpAbort, OpBudget};
use proptest::prelude::*;
use robdd::prelude::*;

const NV: usize = 5;
const ROWS: u32 = 32;

// ── Per-backend diagnostics (structural validation is deliberately not
//    part of the public trait surface) ────────────────────────────────────

trait Diagnostics: FunctionManager {
    fn validate_all(&self) -> Result<(), String>;
    /// Scheduled (policy-fired) reorders so far, aborted ones included.
    fn scheduled_reorders(&self) -> u64;
}

impl Diagnostics for BbddManager {
    fn validate_all(&self) -> Result<(), String> {
        self.backend().validate()
    }
    fn scheduled_reorders(&self) -> u64 {
        self.backend().scheduled_reorders()
    }
}

impl Diagnostics for RobddManager {
    fn validate_all(&self) -> Result<(), String> {
        self.backend().validate()
    }
    fn scheduled_reorders(&self) -> u64 {
        self.backend().scheduled_reorders()
    }
}

impl Diagnostics for ParBbddManager {
    fn validate_all(&self) -> Result<(), String> {
        self.backend().inner().validate()
    }
    fn scheduled_reorders(&self) -> u64 {
        self.backend().inner().scheduled_reorders()
    }
}

impl Diagnostics for ParRobddManager {
    fn validate_all(&self) -> Result<(), String> {
        self.backend().inner().validate()
    }
    fn scheduled_reorders(&self) -> u64 {
        self.backend().inner().scheduled_reorders()
    }
}

// ── Truth-table shadow model (32-bit tables over 5 variables) ────────────

fn tt_var(v: usize) -> u32 {
    let mut t = 0u32;
    for m in 0..ROWS {
        if (m >> v) & 1 == 1 {
            t |= 1 << m;
        }
    }
    t
}

fn tt_restrict(t: u32, v: usize, value: bool) -> u32 {
    let mut r = 0u32;
    for m in 0..ROWS {
        let source = if value { m | (1 << v) } else { m & !(1 << v) };
        if (t >> source) & 1 == 1 {
            r |= 1 << m;
        }
    }
    r
}

fn tt_exists(t: u32, vars: &[usize]) -> u32 {
    vars.iter().fold(t, |t, &v| {
        tt_restrict(t, v, true) | tt_restrict(t, v, false)
    })
}

fn tt_forall(t: u32, vars: &[usize]) -> u32 {
    vars.iter().fold(t, |t, &v| {
        tt_restrict(t, v, true) & tt_restrict(t, v, false)
    })
}

fn check_tt<F: BooleanFunction>(label: &str, f: &F, tt: u32) {
    for m in 0..ROWS {
        let v: Vec<bool> = (0..NV).map(|i| (m >> i) & 1 == 1).collect();
        assert_eq!(
            f.eval(&v),
            (tt >> m) & 1 == 1,
            "{label}: eval disagrees on row {m}"
        );
    }
}

// ── The deterministic governed workload ──────────────────────────────────

/// Run the whole fallible op mix under `budget`, pushing every completed
/// (handle, shadow-table) pair into `survivors` as it is produced — so an
/// abort leaves exactly the handles that were fully committed before it.
fn workload<M: FunctionManager>(
    mgr: &M,
    budget: &mut OpBudget,
    survivors: &mut Vec<(M::Function, u32)>,
) -> Result<(), OpAbort> {
    let vars: Vec<(M::Function, u32)> = (0..NV).map(|v| (mgr.var(v), tt_var(v))).collect();
    // Parity chain: five entangled XORs.
    let (mut p, mut tp) = (vars[0].0.clone(), vars[0].1);
    for (f, tt) in &vars[1..] {
        p = p.try_xor(f, budget)?;
        tp ^= tt;
        survivors.push((p.clone(), tp));
    }
    // A multiplexer on top of the parity.
    let ite = vars[0].0.try_ite(&p, &vars[2].0, budget)?;
    let t_ite = (vars[0].1 & tp) | (!vars[0].1 & vars[2].1);
    survivors.push((ite.clone(), t_ite));
    // Fused relational product, plain quantifications.
    let ae = p.try_and_exists(&ite, &[1, 3], budget)?;
    survivors.push((ae, tt_exists(tp & t_ite, &[1, 3])));
    let ex = ite.try_exists(&[0, 4], budget)?;
    survivors.push((ex, tt_exists(t_ite, &[0, 4])));
    let fa = ite.try_forall(&[2], budget)?;
    survivors.push((fa, tt_forall(t_ite, &[2])));
    // Composition: substitute the parity for variable 1 of the mux.
    let comp = ite.try_compose(1, &p, budget)?;
    let t_comp = (tp & tt_restrict(t_ite, 1, true)) | (!tp & tt_restrict(t_ite, 1, false));
    survivors.push((comp.clone(), t_comp));
    // Governed counting over the final composite.
    let count = comp.try_sat_count(budget)?;
    assert_eq!(count, u128::from(t_comp.count_ones()), "sat_count");
    Ok(())
}

/// The invariant bundle checked after every abort (and after clean runs).
fn assert_consistent<M: Diagnostics>(mgr: &M, survivors: Vec<(M::Function, u32)>) {
    mgr.validate_all()
        .expect("structural invariants after abort");
    for (idx, (f, tt)) in survivors.iter().enumerate() {
        check_tt(&format!("survivor {idx}"), f, *tt);
    }
    // Infallible ops still work on a post-abort manager.
    let mut acc = mgr.constant(false);
    let mut acc_tt = 0u32;
    for v in 0..NV {
        acc = acc.xor(&mgr.var(v));
        acc_tt ^= tt_var(v);
    }
    check_tt("post-abort parity", &acc, acc_tt);
    drop(acc);
    // Leak check: handles dropped → empty registry, sink-only baseline;
    // whatever partial results the abort orphaned are reclaimed here.
    drop(survivors);
    mgr.gc();
    assert_eq!(mgr.external_roots(), 0, "registry must drain after abort");
    assert_eq!(mgr.live_nodes(), 0, "orphans must be GC-reclaimed");
    mgr.validate_all().expect("structural invariants after GC");
}

/// A budget that takes the governed path everywhere (so its checkpoint
/// stream matches an injection run) but never actually aborts: the huge
/// node ceiling marks it "limited" without ever being reached.
fn metering_budget() -> OpBudget {
    OpBudget::unlimited().with_node_limit(1 << 40)
}

/// The exhaustive sweep: meter the workload's checkpoint count N, then
/// force an abort at every K in 1..=N and check the invariant bundle.
fn sweep<M: Diagnostics>(make: impl Fn() -> M) {
    let mgr = make();
    let mut meter = metering_budget();
    let mut full = Vec::new();
    workload(&mgr, &mut meter, &mut full).expect("metering run must complete");
    let n = meter.used();
    assert!(n > 0, "workload must pass checkpoints");
    assert_consistent(&mgr, full);

    for k in 1..=n {
        let mgr = make();
        let mut budget = metering_budget().inject_cancel_at(k);
        let mut survivors = Vec::new();
        let res = workload(&mgr, &mut budget, &mut survivors);
        // The workload is deterministic and passed checkpoint k on the
        // metering run, so injection at k must abort it — as Cancelled,
        // injection's reuse of the cancellation path.
        assert_eq!(res, Err(OpAbort::Cancelled), "k = {k} of {n}");
        assert_consistent(&mgr, survivors);
    }
}

fn par_bbdd(threads: usize) -> ParBbddManager {
    ParBbddManager::new(ParBbdd::with_config(
        NV,
        bbdd::ParConfig {
            threads,
            cutoff: 0, // force the parallel pipeline on every operand size
            split_depth: Some(2),
            cache_ways: 1 << 10,
            shards: 8,
        },
    ))
}

fn par_robdd(threads: usize) -> ParRobddManager {
    ParRobddManager::new(ParRobdd::with_config(
        NV,
        robdd::ParConfig {
            threads,
            cutoff: 0,
            split_depth: Some(2),
            cache_ways: 1 << 10,
            shards: 8,
        },
    ))
}

#[test]
fn exhaustive_fault_injection_bbdd() {
    sweep(|| BbddManager::with_vars(NV));
}

#[test]
fn exhaustive_fault_injection_robdd() {
    sweep(|| RobddManager::with_vars(NV));
}

#[test]
fn exhaustive_fault_injection_par_bbdd() {
    for threads in [1usize, 4] {
        sweep(move || par_bbdd(threads));
    }
}

#[test]
fn exhaustive_fault_injection_par_robdd() {
    for threads in [1usize, 4] {
        sweep(move || par_robdd(threads));
    }
}

// ── Cancellation latency ─────────────────────────────────────────────────

/// The documented bound: once a token is raised, the operation aborts
/// within at most one poll stride of further checkpoints. Run a prefix to
/// put the budget mid-stride (worst case for the countdown), raise the
/// token, and count the checkpoints the rest of the workload manages to
/// pass.
#[test]
fn cancellation_aborts_within_one_poll_stride() {
    const STRIDE: u64 = 16;
    for threads in [1usize, 4] {
        let mgr = par_bbdd(threads);
        let token = CancelToken::new();
        let mut budget = OpBudget::unlimited()
            .with_cancel(&token)
            .with_poll_stride(STRIDE);
        // Prefix: entangle two variables so the budget's countdown is
        // armed somewhere inside a stride.
        let a = mgr.var(0);
        let b = mgr.var(1);
        let _ab = a.try_xor(&b, &mut budget).expect("token not raised yet");
        let before = budget.used();

        token.cancel();
        let mut survivors = Vec::new();
        let res = workload(&mgr, &mut budget, &mut survivors);
        assert_eq!(res, Err(OpAbort::Cancelled), "threads {threads}");
        let after_raise = budget.used() - before;
        assert!(
            after_raise <= STRIDE,
            "threads {threads}: {after_raise} checkpoints after the raise, stride {STRIDE}"
        );
    }
    // Sequential managers: same bound.
    let mgr = BbddManager::with_vars(NV);
    let token = CancelToken::new();
    let mut budget = OpBudget::unlimited()
        .with_cancel(&token)
        .with_poll_stride(16);
    let _warm = mgr.var(0).try_xor(&mgr.var(1), &mut budget).expect("ok");
    let before = budget.used();
    token.cancel();
    let res = workload(&mgr, &mut budget, &mut Vec::new());
    assert_eq!(res, Err(OpAbort::Cancelled));
    assert!(budget.used() - before <= 16);
}

// ── Bounded sifting ──────────────────────────────────────────────────────

/// Meter a sift's checkpoints, then abort it at every K: the variable
/// order must stay consistent and every root must still denote its
/// function.
fn sift_sweep<M: Diagnostics>(make: impl Fn() -> M) {
    // A function whose sift actually moves variables: a lopsided mix of
    // conjunctions and parities.
    let build = |mgr: &M| -> (Vec<(M::Function, u32)>, ()) {
        let v: Vec<(M::Function, u32)> = (0..NV).map(|i| (mgr.var(i), tt_var(i))).collect();
        let and02 = v[0].0.and(&v[2].0);
        let t_and02 = v[0].1 & v[2].1;
        let par134 = v[1].0.xor(&v[3].0).xor(&v[4].0);
        let t_par134 = v[1].1 ^ v[3].1 ^ v[4].1;
        let mix = and02.or(&par134);
        let t_mix = t_and02 | t_par134;
        (vec![(and02, t_and02), (par134, t_par134), (mix, t_mix)], ())
    };

    let mgr = make();
    let (roots, ()) = build(&mgr);
    let mut meter = metering_budget();
    let metered = mgr.try_reorder(&mut meter);
    let Some(res) = metered else {
        // Backend without dynamic reordering: nothing to sweep.
        return;
    };
    res.expect("metering sift must complete");
    let n = meter.used();
    assert!(n > 0, "sift must pass checkpoints");
    for (f, tt) in &roots {
        check_tt("post-sift root", f, *tt);
    }
    drop(roots);

    for k in 1..=n {
        let mgr = make();
        let (roots, ()) = build(&mgr);
        let mut budget = metering_budget().inject_cancel_at(k);
        let res = mgr
            .try_reorder(&mut budget)
            .expect("backend reorders (checked above)");
        assert_eq!(res, Err(OpAbort::Cancelled), "sift k = {k} of {n}");
        // A consistent order: a permutation of 0..NV.
        let mut order = mgr.variable_order();
        order.sort_unstable();
        assert_eq!(order, (0..NV).collect::<Vec<_>>(), "order after abort");
        mgr.validate_all()
            .expect("structural invariants after sift abort");
        for (f, tt) in &roots {
            check_tt(&format!("root after sift abort k={k}"), f, *tt);
        }
        // The manager still sifts to completion afterwards.
        mgr.reorder().expect("infallible sift after abort");
        for (f, tt) in &roots {
            check_tt("root after recovery sift", f, *tt);
        }
        drop(roots);
        mgr.gc();
        assert_eq!(mgr.external_roots(), 0);
        assert_eq!(mgr.live_nodes(), 0);
    }
}

#[test]
fn bounded_sift_fault_injection_bbdd() {
    sift_sweep(|| BbddManager::with_vars(NV));
}

#[test]
fn bounded_sift_fault_injection_robdd() {
    sift_sweep(|| RobddManager::with_vars(NV));
}

// ── Scheduled reorders inside a governed network build ───────────────────

/// A deterministic random netlist big enough to cross the builder's
/// 1024-gate collection gate — the only place `try_build_network` can
/// fire a scheduled reorder.
fn long_netlist() -> logicnet::Network {
    use logicnet::{GateOp, Network};
    let mut net = Network::new("long");
    let mut sigs: Vec<_> = (0..NV).map(|i| net.add_input(&format!("x{i}"))).collect();
    let mut state = 0x5EEDu64;
    for _ in 0..1100 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = sigs[(state >> 11) as usize % sigs.len()];
        let b = sigs[(state >> 33) as usize % sigs.len()];
        let op = match (state >> 50) % 4 {
            0 => GateOp::And,
            1 => GateOp::Or,
            2 => GateOp::Xor,
            _ => GateOp::Nand,
        };
        sigs.push(net.add_gate(op, &[a, b]));
    }
    net.set_output("y", *sigs.last().unwrap());
    net.set_output("z", sigs[NV + 700]);
    net.check().unwrap();
    net
}

/// Arm ONLY the DVO schedule (gc_threshold stays 0, so the op-boundary
/// latch never fires): the one reorder opportunity is the budgeted
/// `try_collect` gate at gate 1024 of `try_build_network`. Meter a clean
/// governed build, prove the schedule fired there, then binary-search the
/// injection point that lands the abort *inside* the scheduled sift and
/// check the full consistency bundle at and after it.
fn scheduled_build_abort_sweep<M: Diagnostics>(make: impl Fn() -> M) {
    use logicnet::build::try_build_network;

    let net = long_netlist();
    let policy: ddcore::dvo::DvoPolicy = "full:thresh1".parse().expect("policy literal");

    // Metering run: the governed build completes and the schedule fired
    // exactly once, at the single 1024-gate boundary.
    let mgr = make();
    mgr.set_reorder_policy(Some(policy));
    let mut meter = metering_budget();
    let outs = try_build_network(&mgr, &net, &mut meter).expect("metering build must complete");
    let n = meter.used();
    assert!(n > 0, "build must pass checkpoints");
    assert_eq!(
        mgr.scheduled_reorders(),
        1,
        "the always-due schedule must fire at the builder's collection gate"
    );
    // Reference truth tables from network simulation.
    for m in 0..ROWS {
        let v: Vec<bool> = (0..NV).map(|i| (m >> i) & 1 == 1).collect();
        let expect = net.simulate(&v);
        for (o, e) in outs.iter().zip(&expect) {
            assert_eq!(o.eval(&v), *e, "metering build row {m}");
        }
    }
    drop(outs);

    // gates_built at abort is monotone in the injection point; the
    // smallest k reporting 1024 gates is an abort *at* the collection
    // gate — i.e. inside the scheduled sift (plain GC passes no
    // checkpoints).
    let gates_at = |k: u64| -> Option<usize> {
        let mgr = make();
        mgr.set_reorder_policy(Some(policy));
        let mut budget = metering_budget().inject_cancel_at(k);
        match try_build_network(&mgr, &net, &mut budget) {
            Ok(_) => None,
            Err(aborted) => {
                assert_eq!(aborted.reason, OpAbort::Cancelled, "k = {k}");
                Some(aborted.gates_built)
            }
        }
    };
    let (mut lo, mut hi) = (1u64, n);
    assert!(gates_at(lo).expect("k=1 must abort") < 1024);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        match gates_at(mid) {
            Some(g) if g < 1024 => lo = mid,
            _ => hi = mid,
        }
    }
    let k_sift = hi;

    // The abort at k_sift and the next few checkpoints land inside (or
    // just past) the scheduled sift; each must leave a consistent,
    // reusable manager.
    for k in [k_sift, k_sift + 1, k_sift + 2, k_sift + 7]
        .into_iter()
        .filter(|&k| k <= n)
    {
        let mgr = make();
        mgr.set_reorder_policy(Some(policy));
        let mut budget = metering_budget().inject_cancel_at(k);
        let aborted = try_build_network(&mgr, &net, &mut budget)
            .expect_err("k within the metered range must abort");
        assert_eq!(aborted.reason, OpAbort::Cancelled, "k = {k}");
        if k == k_sift {
            assert_eq!(
                aborted.gates_built, 1024,
                "first ≥1024 abort must be at the collection gate (the sift)"
            );
            assert_eq!(
                mgr.scheduled_reorders(),
                1,
                "an aborted scheduled sift still consumed its trigger"
            );
        }
        // Consistent order, balanced registry, structurally valid.
        let mut order = mgr.variable_order();
        order.sort_unstable();
        assert_eq!(order, (0..NV).collect::<Vec<_>>(), "order after k = {k}");
        assert_eq!(mgr.external_roots(), 0, "builder cleanup after k = {k}");
        mgr.validate_all().expect("structural invariants");
        mgr.gc();
        assert_eq!(mgr.live_nodes(), 0, "partial build reclaimed, k = {k}");
        // The same manager rebuilds the full network correctly.
        let outs = try_build_network(&mgr, &net, &mut metering_budget())
            .expect("rebuild after aborted scheduled sift");
        for m in 0..ROWS {
            let v: Vec<bool> = (0..NV).map(|i| (m >> i) & 1 == 1).collect();
            let expect = net.simulate(&v);
            for (o, e) in outs.iter().zip(&expect) {
                assert_eq!(o.eval(&v), *e, "rebuild row {m} after k = {k}");
            }
        }
    }
}

#[test]
fn scheduled_reorder_abort_inside_governed_build_bbdd() {
    scheduled_build_abort_sweep(|| BbddManager::with_vars(NV));
}

#[test]
fn scheduled_reorder_abort_inside_governed_build_robdd() {
    scheduled_build_abort_sweep(|| RobddManager::with_vars(NV));
}

#[test]
fn scheduled_reorder_abort_inside_governed_build_par() {
    scheduled_build_abort_sweep(|| ParBbddManager::new(ParBbdd::new(NV, 2)));
    scheduled_build_abort_sweep(|| ParRobddManager::new(ParRobdd::new(NV, 2)));
}

// ── Randomized aborts × random ops ───────────────────────────────────────

type Step = (u8, u8, u8, u8);

fn vars_of_mask(mask: u8) -> Vec<usize> {
    (0..NV).filter(|v| (mask >> v) & 1 == 1).collect()
}

/// A random script of governed ops with a random injection point: every
/// step that completes pushes its (handle, shadow) pair; the abort, if it
/// fires, must leave the usual invariant bundle intact.
fn random_abort_script<M: Diagnostics>(mgr: &M, steps: &[Step], inject_at: u64) {
    let mut budget = metering_budget().inject_cancel_at(inject_at);
    let mut slots: Vec<(M::Function, u32)> =
        vec![(mgr.constant(false), 0), (mgr.constant(true), !0)];
    for v in 0..NV {
        slots.push((mgr.var(v), tt_var(v)));
    }
    let mut aborted = false;
    for &(kind, a, b, c) in steps {
        let pick = |x: u8| x as usize % slots.len();
        let res: Result<Option<(M::Function, u32)>, OpAbort> = match kind % 6 {
            0 => {
                let (i, j) = (pick(a), pick(b));
                let op = BoolOp::from_table(c % 16);
                let mut t = 0u32;
                for m in 0..ROWS {
                    let x = (slots[i].1 >> m) & 1 == 1;
                    let y = (slots[j].1 >> m) & 1 == 1;
                    if op.eval(x, y) {
                        t |= 1 << m;
                    }
                }
                slots[i]
                    .0
                    .try_apply(op, &slots[j].0, &mut budget)
                    .map(|f| Some((f, t)))
            }
            1 => {
                let (i, j, k) = (pick(a), pick(b), pick(c));
                let t = (slots[i].1 & slots[j].1) | (!slots[i].1 & slots[k].1);
                slots[i]
                    .0
                    .try_ite(&slots[j].0, &slots[k].0, &mut budget)
                    .map(|f| Some((f, t)))
            }
            2 => {
                let i = pick(a);
                let vs = vars_of_mask(b);
                let t = tt_exists(slots[i].1, &vs);
                slots[i]
                    .0
                    .try_exists(&vs, &mut budget)
                    .map(|f| Some((f, t)))
            }
            3 => {
                let i = pick(a);
                let vs = vars_of_mask(b);
                let t = tt_forall(slots[i].1, &vs);
                slots[i]
                    .0
                    .try_forall(&vs, &mut budget)
                    .map(|f| Some((f, t)))
            }
            4 => {
                let (i, j) = (pick(a), pick(b));
                let vs = vars_of_mask(c);
                let t = tt_exists(slots[i].1 & slots[j].1, &vs);
                slots[i]
                    .0
                    .try_and_exists(&slots[j].0, &vs, &mut budget)
                    .map(|f| Some((f, t)))
            }
            _ => {
                // Handle drop, mid-script: governance must compose with
                // the GC machinery.
                if slots.len() > 1 {
                    let i = pick(a);
                    slots.swap_remove(i);
                }
                Ok(None)
            }
        };
        match res {
            Ok(Some(pair)) => slots.push(pair),
            Ok(None) => {}
            Err(reason) => {
                assert_eq!(reason, OpAbort::Cancelled, "only injection can fire");
                aborted = true;
                break;
            }
        }
    }
    let _ = aborted; // scripts short of the injection point finish clean
    mgr.validate_all().unwrap();
    for (idx, (f, tt)) in slots.iter().enumerate() {
        check_tt(&format!("slot {idx}"), f, *tt);
    }
    drop(slots);
    mgr.gc();
    assert_eq!(mgr.external_roots(), 0, "registry must drain");
    assert_eq!(mgr.live_nodes(), 0, "orphans must be GC-reclaimed");
    mgr.validate_all().unwrap();
}

// ── Session-scoped fault injection (the MVCC serving layer) ──────────────
//
// Same discipline as the manager sweeps, one layer up: a deterministic
// session workload (apply/quantify/compose/sat_count/CEC against published
// functions) is metered, then aborted at every checkpoint. After each
// abort the *session* must stay usable (the same session finishes the
// whole workload clean), the *shared base* must be untouched (published
// functions still evaluate correctly, fresh sessions still fork), and
// once every session drops the epoch tracker must report zero live
// overlay nodes — the no-leak proof for the serving layer.

/// The published workload library: a parity and a lopsided mix over the
/// same NV inputs as the manager sweeps.
fn serving_net() -> logicnet::Network {
    use logicnet::{GateOp, Network};
    let mut net = Network::new("served");
    let xs: Vec<_> = (0..NV).map(|i| net.add_input(&format!("x{i}"))).collect();
    let p01 = net.add_gate(GateOp::Xor, &[xs[0], xs[1]]);
    let par = net.add_gate(GateOp::Xor, &[p01, xs[2]]);
    let and = net.add_gate(GateOp::And, &[xs[0], xs[3]]);
    let mix = net.add_gate(GateOp::Or, &[and, xs[4]]);
    net.set_output("par", par);
    net.set_output("mix", mix);
    net.check().unwrap();
    net
}

/// The deterministic in-session op mix, all through one caller budget.
fn session_workload<B: ddcore::session::SessionBackend>(
    s: &mut ddcore::session::Session<B>,
    budget: &mut OpBudget,
) -> Result<(), ddcore::session::SessionError> {
    s.apply(BoolOp::AND, "par", "mix", Some("t_and"), budget)?;
    s.apply(BoolOp::XOR, "t_and", "mix", Some("t_xor"), budget)?;
    s.quantify(true, "t_xor", &[0, 2], Some("t_ex"), budget)?;
    s.quantify(false, "t_and", &[4], Some("t_fa"), budget)?;
    s.compose("mix", 4, "par", Some("t_comp"), budget)?;
    let _ = s.sat_count("t_comp", budget)?;
    let _ = s.cec("par", "mix", budget)?;
    Ok(())
}

fn session_sweep<B: ddcore::session::SessionBackend>(make: impl Fn() -> B) {
    use ddcore::session::SessionError;
    let net = serving_net();
    let base = logicnet::publish::publish_networks_on(make(), &[&net])
        .expect("publish the serving library");

    // Metering run: count the workload's checkpoints.
    let mut s = base.session();
    let mut meter = metering_budget();
    session_workload(&mut s, &mut meter).expect("metering session run must complete");
    let n = meter.used();
    assert!(n > 0, "session workload must pass checkpoints");
    drop(s);

    for k in 1..=n {
        let mut s = base.session();
        let mut budget = metering_budget().inject_cancel_at(k);
        let res = session_workload(&mut s, &mut budget);
        assert!(
            matches!(res, Err(SessionError::Aborted(OpAbort::Cancelled))),
            "session k = {k} of {n}: {res:?}"
        );
        // The aborted session is still serviceable: the identical workload
        // completes on it (stores overwrite their earlier partial set).
        session_workload(&mut s, &mut metering_budget())
            .expect("aborted session must finish the workload clean");
        drop(s);
        // The shared base never felt the abort: every published function
        // still denotes its network output, and fresh sessions fork fine.
        for m in 0..ROWS {
            let v: Vec<bool> = (0..NV).map(|i| (m >> i) & 1 == 1).collect();
            let expect = net.simulate(&v);
            assert_eq!(base.eval("par", &v), Some(expect[0]), "k = {k} row {m}");
            assert_eq!(base.eval("mix", &v), Some(expect[1]), "k = {k} row {m}");
        }
    }

    // No overlay leak across the whole sweep: every session dropped, so
    // the tracker's session.* gauges must be back to zero while the
    // reclaim counters prove the overlays were actually torn down.
    let t = base.tracker();
    assert_eq!(t.sessions_live(), 0, "all sweep sessions dropped");
    assert_eq!(
        t.overlay_nodes(),
        0,
        "overlay nodes leaked past session drop"
    );
    assert!(
        t.nodes_reclaimed() > 0,
        "the sweep must have reclaimed overlays"
    );
    let mut m = ddcore::obs::MetricsSnapshot::new("session-sweep");
    t.fill(&mut m);
    assert_eq!(m.get("session.live"), Some(0));
    assert_eq!(m.get("session.nodes"), Some(0));
    assert_eq!(
        m.get("session.created"),
        Some(n + 1),
        "one session per k plus metering"
    );
    assert!(
        m.get("session.ops_aborted").unwrap_or(0) >= n,
        "every k aborted one op"
    );
}

#[test]
fn session_fault_injection_bbdd() {
    session_sweep(|| Bbdd::new(NV));
}

#[test]
fn session_fault_injection_robdd() {
    session_sweep(|| Robdd::new(NV));
}

#[test]
fn session_fault_injection_par_bbdd() {
    for threads in [1usize, 4] {
        session_sweep(move || {
            ParBbdd::with_config(
                NV,
                bbdd::ParConfig {
                    threads,
                    cutoff: 0,
                    split_depth: Some(2),
                    cache_ways: 1 << 10,
                    shards: 8,
                },
            )
        });
    }
}

#[test]
fn session_fault_injection_par_robdd() {
    for threads in [1usize, 4] {
        session_sweep(move || {
            ParRobdd::with_config(
                NV,
                robdd::ParConfig {
                    threads,
                    cutoff: 0,
                    split_depth: Some(2),
                    cache_ways: 1 << 10,
                    shards: 8,
                },
            )
        });
    }
}

// ── Randomized-abort properties over the scripts above ───────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_aborts_bbdd(
        steps in proptest::collection::vec(
            (0u8..6, any::<u8>(), any::<u8>(), any::<u8>()), 1..24),
        inject in 1u64..96,
    ) {
        random_abort_script(&BbddManager::with_vars(NV), &steps, inject);
    }

    #[test]
    fn random_aborts_robdd(
        steps in proptest::collection::vec(
            (0u8..6, any::<u8>(), any::<u8>(), any::<u8>()), 1..24),
        inject in 1u64..96,
    ) {
        random_abort_script(&RobddManager::with_vars(NV), &steps, inject);
    }

    #[test]
    fn random_aborts_par_bbdd(
        steps in proptest::collection::vec(
            (0u8..6, any::<u8>(), any::<u8>(), any::<u8>()), 1..16),
        inject in 1u64..96,
    ) {
        for threads in [1usize, 4] {
            random_abort_script(&par_bbdd(threads), &steps, inject);
        }
    }

    #[test]
    fn random_aborts_par_robdd(
        steps in proptest::collection::vec(
            (0u8..6, any::<u8>(), any::<u8>(), any::<u8>()), 1..16),
        inject in 1u64..96,
    ) {
        for threads in [1usize, 4] {
            random_abort_script(&par_robdd(threads), &steps, inject);
        }
    }
}

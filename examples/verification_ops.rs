//! The verification ops layer end-to-end: rewrite a datapath netlist
//! through the BBDD package, *prove* the rewrite correct with the
//! combinational equivalence checker (XOR miter + existential
//! quantification), then seed a single-gate mutation and watch the checker
//! refute it with a concrete counterexample — on both decision-diagram
//! backends.
//!
//! Run with: `cargo run --release --example verification_ops`

use bbdd::prelude::*;
use logicnet::cec::{check_equivalence_bbdd, check_equivalence_robdd, CecVerdict};
use logicnet::{GateOp, Network, Signal};
use synthkit::rewrite::rewrite_and_verify_bbdd;

/// Rebuild `net` with gate `victim`'s operator replaced by `op` (the
/// netlist IR is append-only, so a mutation is a mapped copy).
fn mutate_gate(net: &Network, victim: usize, op: GateOp) -> Network {
    let mut out = Network::new(&format!("{}_mutated", net.name()));
    let mut map: Vec<Option<Signal>> = vec![None; net.num_signals()];
    for &s in net.inputs() {
        map[s.index()] = Some(out.add_input(net.signal_name(s)));
    }
    for (gi, g) in net.gates().iter().enumerate() {
        let ins: Vec<Signal> = g
            .inputs
            .iter()
            .map(|s| map[s.index()].expect("topological order"))
            .collect();
        let new_op = if gi == victim { op } else { g.op };
        map[g.output.index()] = Some(out.add_gate(new_op, &ins));
    }
    for (port, s) in net.outputs() {
        out.set_output(port, map[s.index()].expect("outputs driven"));
    }
    out.check()
        .expect("mutated network stays structurally valid");
    out
}

fn main() {
    // ── 1. Rewrite + self-verification ────────────────────────────────
    // The paper's front-end: a carry-lookahead adder netlist is rebuilt
    // as a BBDD (sifted), dumped back as a comparator/mux netlist, and
    // the CEC driver proves the round trip lossless.
    let original = benchgen::datapath::adder_cla(12);
    println!(
        "original: {} ({} gates, {} inputs, {} outputs)",
        original.name(),
        original.num_gates(),
        original.num_inputs(),
        original.num_outputs()
    );
    let (rewritten, verdict) = rewrite_and_verify_bbdd(&original, true);
    println!(
        "BBDD-rewritten netlist: {} gates; CEC verdict: {}",
        rewritten.num_gates(),
        if verdict.is_equivalent() {
            "EQUIVALENT ✓"
        } else {
            "INEQUIVALENT ✗"
        }
    );
    assert!(verdict.is_equivalent());

    // The same proof on the ROBDD backend (identical driver, different
    // manager) — the ops layer is manager-generic.
    let robdd_verdict = check_equivalence_robdd(&original, &rewritten);
    println!("ROBDD backend agrees: {}", robdd_verdict.is_equivalent());
    assert!(robdd_verdict.is_equivalent());

    // ── 2. Seeded mutation → refutation with a counterexample ─────────
    // Flip the root mux of the rewritten netlist into a majority gate.
    // (The *bottom*-level muxes have constant children, where mux and maj
    // coincide — a mutation the checker rightly proves harmless; the root
    // mux has live children, so this one changes the function.)
    let victim = rewritten
        .gates()
        .iter()
        .rposition(|g| g.op == GateOp::Mux)
        .expect("the rewrite emits muxes");
    let mutated = mutate_gate(&rewritten, victim, GateOp::Maj);
    match check_equivalence_bbdd(&original, &mutated) {
        CecVerdict::Equivalent => panic!("the mutation must be detected"),
        CecVerdict::Inequivalent(cex) => {
            println!(
                "mutation in gate {victim} refuted: output `{}` differs on {} of 2^{} assignments",
                cex.output_name,
                cex.distinguishing
                    .map_or("?".to_string(), |c| c.to_string()),
                original.num_inputs()
            );
            let good = original.simulate(&cex.inputs);
            let bad = mutated.simulate(&cex.inputs);
            assert_ne!(good, bad, "counterexample distinguishes by simulation");
            println!("counterexample verified by simulation ✓");
        }
    }

    // ── 3. Quantification & model counting on the adder itself ────────
    let mgr = BbddManager::with_vars(original.num_inputs());
    let outs = logicnet::build::build_network(&mgr, &original);
    let cout = outs.last().expect("adder has outputs"); // an owned handle
    let n = original.num_inputs();
    println!(
        "carry-out is set for {} of 2^{n} input assignments",
        cout.sat_count()
    );
    // ∃(b-operand). cout — for which a-operands can a carry happen at all?
    let b_vars: Vec<usize> = (0..n).filter(|v| v % 2 == 1).collect();
    let reachable = cout.exists(&b_vars);
    println!(
        "∃b. cout covers {} of 2^{n} (a-only) assignments",
        reachable.sat_count()
    );
    // The fused form gives the same answer in one pass:
    let one = mgr.constant(true);
    let fused = cout.and_exists(&one, &b_vars);
    assert_eq!(fused, reachable);
    // A concrete witness, checked by evaluation.
    let witness = cout.any_sat().expect("a carry is reachable");
    assert!(cout.eval(&witness));
    println!("sample carry-producing assignment found and checked ✓");
    let s = mgr.backend().stats();
    println!(
        "manager counters: {} quantifier entries, {} cache lookups ({:.1}% hits)",
        s.quant_calls,
        s.cache_lookups,
        100.0 * s.cache_hits as f64 / s.cache_lookups.max(1) as f64
    );
}

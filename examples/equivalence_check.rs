//! Combinational equivalence checking through canonicity: two adder
//! implementations (ripple-carry vs carry-lookahead) reduce to identical
//! BBDD edges; a buggy variant is caught with a counterexample.
//!
//! Run with: `cargo run --release --example equivalence_check`

use bbdd::prelude::*;
use benchgen::datapath::{adder, adder_cla};
use logicnet::build::build_network;
use logicnet::{GateOp, Network};

fn main() {
    let w = 12;
    let ripple = adder(w);
    let cla = adder_cla(w);
    println!(
        "ripple adder: {} gates | carry-lookahead adder: {} gates",
        ripple.num_gates(),
        cla.num_gates()
    );

    // Build both in ONE manager: canonicity turns equivalence checking
    // into pointer comparisons, per output.
    let mgr = BbddManager::with_vars(ripple.num_inputs());
    let r1 = build_network(&mgr, &ripple);
    let r2 = build_network(&mgr, &cla);
    let equivalent = r1 == r2;
    println!("all {} outputs canonically equal: {equivalent}", r1.len());
    assert!(equivalent);

    // Now sabotage the lookahead: swap the generate/propagate roles of one
    // bit and let the diagrams disagree.
    let buggy = {
        let mut net = Network::new("buggy_adder");
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in (0..w).rev() {
            a.push(net.add_input(&format!("a{i}")));
            b.push(net.add_input(&format!("b{i}")));
        }
        a.reverse();
        b.reverse();
        let mut carry = net.add_gate(GateOp::Const0, &[]);
        for i in 0..w {
            let p = net.add_gate(GateOp::Xor, &[a[i], b[i]]);
            let s = net.add_gate(GateOp::Xor, &[p, carry]);
            net.set_output(&format!("s{i}"), s);
            // BUG: uses OR instead of MAJ for the carry of bit 5.
            carry = if i == 5 {
                net.add_gate(GateOp::Or, &[a[i], b[i]])
            } else {
                net.add_gate(GateOp::Maj, &[a[i], b[i], carry])
            };
        }
        net.set_output("cout", carry);
        net.check().unwrap();
        net
    };
    let r3 = build_network(&mgr, &buggy);
    let mismatches: Vec<usize> = (0..r1.len()).filter(|&i| r1[i] != r3[i]).collect();
    println!(
        "buggy adder disagrees on outputs {mismatches:?} (first differing output: {})",
        ripple.outputs()[mismatches[0]].0
    );
    assert!(!mismatches.is_empty());

    // Produce a concrete counterexample via the XOR of the two functions
    // (a handle, so it stays pinned while we restrict our way down it).
    let diff = &r1[mismatches[0]] ^ &r3[mismatches[0]];
    let count = diff.sat_count();
    println!(
        "distinguishing assignments for that output: {count} of 2^{}",
        ripple.num_inputs()
    );
    // Walk up a satisfying assignment by restriction.
    let mut assignment = vec![false; ripple.num_inputs()];
    let mut f = diff;
    #[allow(clippy::needless_range_loop)]
    for v in 0..ripple.num_inputs() {
        let f1 = f.restrict(v, true);
        if f1.sat_count() > 0 {
            assignment[v] = true;
            f = f1;
        } else {
            f = f.restrict(v, false);
        }
    }
    println!("counterexample input vector: {assignment:?}");
    let o_rip = ripple.simulate(&assignment);
    let o_bug = buggy.simulate(&assignment);
    assert_ne!(o_rip, o_bug, "counterexample must distinguish the designs");
    println!("simulation confirms the counterexample ✓");
}

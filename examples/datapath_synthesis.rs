//! The paper's §V case study in miniature: use the BBDD package as a
//! front-end to a standard-cell synthesis flow and compare against the
//! same back-end without it.
//!
//! Run with: `cargo run --release --example datapath_synthesis`

use benchgen::datapath::Datapath;
use logicnet::sim::{random_equivalence, Equivalence};
use synthkit::cells::CellLibrary;
use synthkit::flow::{synthesize_bbdd_first_with, synthesize_direct_with};
use synthkit::mapper::MapStyle;

fn main() {
    let lib = CellLibrary::paper_22nm();
    println!(
        "Library: {} cells (22 nm characterization)",
        lib.cells().len()
    );
    for cell in lib.cells() {
        println!(
            "  {:<6} area {:.3} um2, delay {:.3} ns",
            cell.name, cell.area_um2, cell.delay_ns
        );
    }

    println!(
        "\n{:<14} | {:>26} | {:>26}",
        "datapath", "BBDD front-end + backend", "backend alone"
    );
    println!("{}", "-".repeat(76));
    for dp in [
        Datapath::Adder { width: 16 },
        Datapath::Equality { width: 16 },
        Datapath::Magnitude { width: 16 },
    ] {
        // The operator-expanded netlist a commercial generator produces.
        let net = dp.commercial_implementation();
        let direct = synthesize_direct_with(&net, &lib, MapStyle::TreeLocal);
        let (bbdd_flow, info) = synthesize_bbdd_first_with(&net, &lib, true, MapStyle::TreeLocal);

        // Both results must implement the original function.
        let names: Vec<String> = net
            .inputs()
            .iter()
            .map(|&s| net.signal_name(s).to_string())
            .collect();
        for mapped in [&direct.mapped, &bbdd_flow.mapped] {
            assert_eq!(
                random_equivalence(&net, &mapped.to_network(&lib, &names), 8, 7),
                Equivalence::Indistinguishable
            );
        }

        println!(
            "{:<14} | {:>7.2} um2 {:>6.3} ns {:>4}g | {:>7.2} um2 {:>6.3} ns {:>4}g   (BBDD {}→{} nodes)",
            dp.label(),
            bbdd_flow.area_um2,
            bbdd_flow.delay_ns,
            bbdd_flow.gate_count,
            direct.area_um2,
            direct.delay_ns,
            direct.gate_count,
            info.nodes_built,
            info.nodes_sifted,
        );
    }
    println!("\nBoth flows verified equivalent to the RTL by randomized simulation.");
}

//! The adder-pair equivalence check running across the fork-join pool —
//! both parallel wirings, with per-thread statistics.
//!
//! 1. **Pooled per-output CEC**: the ripple/carry-lookahead adder pair is
//!    proved output by output, with the outputs partitioned into chunks
//!    and each chunk proved in its own manager on a pool worker.
//! 2. **Parallel-manager CEC**: the same pair proved by the ordinary
//!    sequential driver running on a `ParBbdd`, where every miter and
//!    quantification is internally split across the pool.
//!
//! The worker count comes from `BBDD_THREADS` (default 4):
//!
//! ```text
//! BBDD_THREADS=8 cargo run --release --example parallel_cec
//! ```

use logicnet::cec::{check_equivalence, check_equivalence_parallel, CecVerdict};

fn verdict_str(v: &CecVerdict) -> &'static str {
    if v.is_equivalent() {
        "EQUIVALENT ✓"
    } else {
        "INEQUIVALENT ✗"
    }
}

fn main() {
    let threads = ddcore::par::threads_from_env(4);
    let width = 16;
    let ripple = benchgen::datapath::adder(width);
    let cla = benchgen::datapath::adder_cla(width);
    println!(
        "CEC: {} ({} gates) vs {} ({} gates), {} outputs, {threads} thread(s)\n",
        ripple.name(),
        ripple.num_gates(),
        cla.name(),
        cla.num_gates(),
        ripple.num_outputs(),
    );

    // ── 1. per-output miter loop across the pool ──────────────────────
    let t0 = std::time::Instant::now();
    let (verdict, stats) = check_equivalence_parallel(&ripple, &cla, threads, || {
        bbdd::BbddManager::with_vars(ripple.num_inputs())
    });
    let dt = t0.elapsed();
    println!(
        "pooled per-output CEC: {} in {dt:.2?}",
        verdict_str(&verdict)
    );
    println!(
        "  {} outputs in {} chunks over {} worker(s)",
        stats.outputs, stats.chunks, stats.workers
    );
    for (w, n) in stats.chunks_by_worker.iter().enumerate() {
        let role = if w == 0 { " (main)" } else { "" };
        println!("  worker {w}{role}: {n} chunk(s)");
    }

    // ── 2. the same proof on a parallel manager ───────────────────────
    let mgr = bbdd::ParBbddManager::new(bbdd::ParBbdd::with_config(
        ripple.num_inputs(),
        bbdd::ParConfig {
            threads,
            // Adder diagrams are tiny (BBDDs love arithmetic), so the
            // default cutoff would route everything to the sequential
            // fallback; force the pipeline to demonstrate the machinery.
            cutoff: 0,
            ..bbdd::ParConfig::default()
        },
    ));
    let t0 = std::time::Instant::now();
    let verdict = check_equivalence(&mgr, &ripple, &cla);
    let dt = t0.elapsed();
    println!(
        "\nParBbdd-backed CEC:    {} in {dt:.2?}",
        verdict_str(&verdict)
    );
    let ps = mgr.backend().par_stats();
    println!(
        "  ops: {} parallel / {} sequential-fallback; {} leaf tasks ({} run by helpers)",
        ps.ops_parallel, ps.ops_sequential, ps.tasks_executed, ps.tasks_stolen
    );
    for (w, n) in ps.tasks_by_worker.iter().enumerate() {
        let role = if w == 0 { " (main)" } else { "" };
        println!("  worker {w}{role}: {n} task(s)");
    }
    println!(
        "  overlay: {} nodes materialized, {} imported; shard contention: {}",
        ps.overlay_nodes, ps.nodes_imported, ps.shard_contention
    );
    let occ = &ps.last_shard_occupancy;
    if !occ.is_empty() {
        println!(
            "  last op shard occupancy: min {} / max {} across {} shards",
            occ.iter().min().unwrap(),
            occ.iter().max().unwrap(),
            occ.len()
        );
    }
    println!(
        "  lossy cache: {:.1}% hit rate over {} lookups ({} tag-tear misses)",
        100.0 * ps.cache.hit_rate(),
        ps.cache.lookups,
        ps.cache.tear_misses
    );
}

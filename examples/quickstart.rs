//! Quickstart: build, query, reorder and export Biconditional BDDs
//! through the unified `ddcore::api` trait layer (`bbdd::prelude`).
//!
//! Run with: `cargo run --example quickstart`

use bbdd::prelude::*;

fn main() {
    // A manager over 6 variables: a 3-bit equality comparator
    // (a2=b2)∧(a1=b1)∧(a0=b0) with operands interleaved. Handles support
    // the `& | ^ !` operator sugar on references.
    let mgr = BbddManager::with_vars(6);
    let mut eq = mgr.constant(true);
    for i in (0..3).rev() {
        let a = mgr.var(2 * i);
        let b = mgr.var(2 * i + 1);
        eq = &eq & &a.xnor(&b);
    }

    println!("3-bit equality comparator");
    println!("  node count      : {}", eq.node_count());
    println!("  satisfying assignments: {} of 64", eq.sat_count());
    println!(
        "  eval a=5,b=5    : {}",
        eq.eval(&[true, true, false, false, true, true])
    );
    println!(
        "  eval a=5,b=4    : {}",
        eq.eval(&[true, true, false, false, true, false])
    );

    // Negation is free (complement edges), and the representation is
    // canonical: same function ⟹ same handle.
    let neq_direct = !&eq;
    let one = mgr.constant(true);
    let neq_built = eq.xor(&one);
    assert_eq!(neq_direct, neq_built);
    println!("  canonicity      : ¬f built two ways is one edge ✓");

    // The biconditional expansion makes parity linear — half the size a
    // BDD needs.
    let mut parity = mgr.constant(false);
    for v in 0..6 {
        parity = &parity ^ &mgr.var(v);
    }
    println!("6-input parity");
    println!(
        "  node count      : {} (a BDD needs 6)",
        parity.node_count()
    );

    // Reordering: scramble the order, then let sifting recover it. The
    // handles `eq` and `parity` are registered roots — sifting discovers
    // them from the registry, so there is no root list to maintain (or
    // forget).
    mgr.backend_mut().reorder_to(&[0, 2, 4, 1, 3, 5]);
    let scrambled = eq.node_count();
    mgr.reorder();
    println!(
        "comparator after scramble: {scrambled} nodes; after sifting: {} nodes",
        eq.node_count()
    );

    // Export for graphviz.
    let dot = mgr.to_dot(&[eq, parity], &["eq3", "parity6"]);
    println!(
        "\nDOT export: {} bytes (pipe into `dot -Tpng` to render)",
        dot.len()
    );
}

//! Quickstart: build, query, reorder and export Biconditional BDDs.
//!
//! Run with: `cargo run --example quickstart`

use bbdd::{Bbdd, BoolOp};

fn main() {
    // A manager over 6 variables: a 3-bit equality comparator
    // (a2=b2)∧(a1=b1)∧(a0=b0) with operands interleaved.
    let mut mgr = Bbdd::new(6);
    let mut eq = mgr.one();
    for i in (0..3).rev() {
        let a = mgr.var(2 * i);
        let b = mgr.var(2 * i + 1);
        let bit_eq = mgr.xnor(a, b);
        eq = mgr.and(eq, bit_eq);
    }

    println!("3-bit equality comparator");
    println!("  node count      : {}", mgr.node_count(eq));
    println!("  satisfying assignments: {} of 64", mgr.sat_count(eq));
    println!(
        "  eval a=5,b=5    : {}",
        mgr.eval(eq, &[true, true, false, false, true, true])
    );
    println!(
        "  eval a=5,b=4    : {}",
        mgr.eval(eq, &[true, true, false, false, true, false])
    );

    // Negation is free (complement edges), and the representation is
    // canonical: same function ⟹ same edge.
    let neq_direct = !eq;
    let one = mgr.one();
    let neq_built = mgr.apply(BoolOp::XOR, eq, one);
    assert_eq!(neq_direct, neq_built);
    println!("  canonicity      : ¬f built two ways is one edge ✓");

    // The biconditional expansion makes parity linear — half the size a
    // BDD needs.
    let mut parity = mgr.zero();
    for v in 0..6 {
        let lit = mgr.var(v);
        parity = mgr.xor(parity, lit);
    }
    println!("6-input parity");
    println!(
        "  node count      : {} (a BDD needs 6)",
        mgr.node_count(parity)
    );

    // Reordering: scramble the order, then let sifting recover it. The
    // handles returned by `fun` are registered roots — sifting discovers
    // them from the registry, so there is no root list to maintain (or
    // forget).
    let eq_h = mgr.fun(eq);
    let parity_h = mgr.fun(parity);
    mgr.reorder_to(&[0, 2, 4, 1, 3, 5]);
    let scrambled = mgr.node_count(eq_h.edge());
    mgr.sift();
    println!(
        "comparator after scramble: {scrambled} nodes; after sifting: {} nodes",
        mgr.node_count(eq_h.edge())
    );

    // Export for graphviz.
    let dot = mgr.to_dot(&[eq_h.edge(), parity_h.edge()], &["eq3", "parity6"]);
    println!(
        "\nDOT export: {} bytes (pipe into `dot -Tpng` to render)",
        dot.len()
    );
}

//! Chain-variable reordering in action: a comparator built with a hostile
//! variable order shrinks by orders of magnitude under sifting (§IV-A4).
//!
//! Run with: `cargo run --release --example reorder_demo`

use bbdd::Bbdd;
use robdd::Robdd;

fn main() {
    let k = 8; // operand width
    println!("{k}-bit equality comparator, hostile order (all a-bits above all b-bits)\n");

    // BBDD.
    let mut mgr = Bbdd::new(2 * k);
    let mut eq = mgr.one();
    for i in 0..k {
        let a = mgr.var(i);
        let b = mgr.var(i + k);
        let x = mgr.xnor(a, b);
        eq = mgr.and(eq, x);
    }
    let before = mgr.node_count(eq);
    let eq = mgr.fun(eq); // handle = registered GC/sift root; no root lists
    mgr.sift();
    let eq = eq.edge();
    let after = mgr.node_count(eq);
    println!("BBDD : {before:>6} nodes → {after:>4} nodes after sifting");
    println!("       final order: {:?}", mgr.order());

    // ROBDD, for contrast.
    let mut bdd = Robdd::new(2 * k);
    let mut beq = bdd.one();
    for i in 0..k {
        let a = bdd.var(i);
        let b = bdd.var(i + k);
        let x = bdd.xnor(a, b);
        beq = bdd.and(beq, x);
    }
    let bbefore = bdd.node_count(beq);
    let beq = bdd.fun(beq);
    bdd.sift();
    let bafter = bdd.node_count(beq.edge());
    println!("ROBDD: {bbefore:>6} nodes → {bafter:>4} nodes after sifting");

    println!(
        "\nWith interleaved operands the equality BBDD is one XNOR-chain node per \
         bit ({k} nodes) — the biconditional expansion absorbs each (aᵢ,bᵢ) pair, \
         which is why comparators are the paper's flagship workload."
    );
    assert!(after <= bafter, "BBDD must not lose to the BDD here");
}

//! Chain-variable reordering in action: a comparator built with a hostile
//! variable order shrinks by orders of magnitude under sifting (§IV-A4).
//! The same generic routine drives both packages through the trait API.
//!
//! Run with: `cargo run --release --example reorder_demo`

use bbdd::prelude::*;
use robdd::prelude::*;

/// Build the hostile-order equality comparator and sift it; returns the
/// (before, after) node counts — one routine for every backend.
fn comparator_sift<M: FunctionManager>(mgr: &M, k: usize) -> (usize, usize) {
    let mut eq = mgr.constant(true);
    for i in 0..k {
        let a = mgr.var(i);
        let b = mgr.var(i + k);
        eq = eq.and(&a.xnor(&b));
    }
    let before = eq.node_count();
    // `eq` is a registered GC/sift root by construction; no root lists.
    mgr.reorder().expect("sequential backends reorder");
    (before, eq.node_count())
}

fn main() {
    let k = 8; // operand width
    println!("{k}-bit equality comparator, hostile order (all a-bits above all b-bits)\n");

    let bb = BbddManager::with_vars(2 * k);
    let (before, after) = comparator_sift(&bb, k);
    println!("BBDD : {before:>6} nodes → {after:>4} nodes after sifting");
    println!("       final order: {:?}", bb.variable_order());

    let bd = RobddManager::with_vars(2 * k);
    let (bbefore, bafter) = comparator_sift(&bd, k);
    println!("ROBDD: {bbefore:>6} nodes → {bafter:>4} nodes after sifting");

    println!(
        "\nWith interleaved operands the equality BBDD is one XNOR-chain node per \
         bit ({k} nodes) — the biconditional expansion absorbs each (aᵢ,bᵢ) pair, \
         which is why comparators are the paper's flagship workload."
    );
    assert!(after <= bafter, "BBDD must not lose to the BDD here");
}

//! Emit a generated CNF benchmark instance as DIMACS on stdout.
//!
//! The committed `tests/data/*.cnf` fixtures are produced by this example
//! (the generators are deterministic), so they can be regenerated at any
//! time and diffed:
//!
//! ```sh
//! cargo run --release --example gen_cnf -- parity 8 > tests/data/parity8.cnf
//! cargo run --release --example gen_cnf -- random3 20 85 7
//! cargo run --release --example gen_cnf -- product 16 3
//! ```

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gen_cnf parity <n>              Tseitin chain for x1 ⊕ … ⊕ xn = 1\n\
         \u{20}      gen_cnf random3 <vars> <clauses> <seed>\n\
         \u{20}      gen_cnf product <features> <seed>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nums: Vec<u64> = args[1..]
        .iter()
        .map_while(|a| a.parse::<u64>().ok())
        .collect();
    let (inst, comment) = match (args.first().map(String::as_str), nums.as_slice()) {
        (Some("parity"), [n]) => (
            benchgen::cnf::parity_chain(*n as usize),
            format!("parity chain, n = {n}"),
        ),
        (Some("random3"), [v, c, s]) => (
            benchgen::cnf::random3(*v as usize, *c as usize, *s),
            format!("random 3-CNF, {v} vars, {c} clauses, seed {s}"),
        ),
        (Some("product"), [f, s]) => (
            benchgen::cnf::product_config(*f as usize, *s),
            format!("product configuration, {f} features, seed {s}"),
        ),
        _ => return usage(),
    };
    print!("{}", inst.to_dimacs(&comment));
    ExitCode::SUCCESS
}
